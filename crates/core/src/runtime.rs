//! Runtime configuration, the two execution backends, the restart
//! supervisor and the run report.
//!
//! `charm.start(main)` in CharmPy becomes:
//!
//! ```no_run
//! use charm_core::prelude::*;
//! let report = Runtime::new(4).run(|co| {
//!     println!("hello from PE {}", co.ctx().my_pe());
//!     co.ctx().exit();
//! });
//! # let _ = report;
//! ```
//!
//! Two backends share every line of model semantics and differ only in how
//! PEs are driven:
//!
//! * [`Backend::Threads`] — one OS thread per PE, crossbeam channels as the
//!   interconnect. The "real" runtime for multicore hosts.
//! * [`Backend::Sim`] — all PEs multiplexed on a deterministic virtual-time
//!   event loop, with message delays from a [`MachineModel`]. This is the
//!   substitution for the paper's Blue Waters/Cori testbeds: handler
//!   execution is metered and charged to per-PE virtual clocks, so parallel
//!   performance (the figures) is read off virtual time.
//!
//! With [`Runtime::auto_checkpoint`] + [`Runtime::recover_with`] armed,
//! both drivers become restart supervisors (DESIGN.md §8): a PE death (a
//! panicked thread, an injected sim kill) or an idle-timeout hang bumps the
//! recovery epoch, restores every chare from the newest complete
//! buddy/disk checkpoint, re-runs the recovery entry, and discards
//! in-flight envelopes stamped with the stale epoch.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use charm_sim::{EventQueue, MachineModel, VTime};
use charm_trace::{MetricFrame, PePerf, PeTrace, TraceConfig, TraceReport, WorkClass};
use charm_wire::Codec;

use crate::chare::{Chare, MsgGuard, MsgGuards, Registry};
use crate::checkpoint::{self, CkptError, CkptFile, Store};
use crate::collections::{Placement, Placements};
use crate::coro::{install_quiet_shutdown_hook, run_coroutine, Co};
use crate::ctx::Ctx;
use crate::ids::Pe;
use crate::lb::LbStrategy;
use crate::msg::{EnvKind, Envelope};
use crate::pe::{CkptStore, PeState, RestoreFrom, SchedCfg};
use crate::reduction::{CustomReducers, RedData, Reducer};
use crate::tree::TreeShape;

/// How PEs execute.
#[derive(Clone)]
pub enum Backend {
    /// One OS thread per PE (real parallel execution).
    Threads,
    /// Deterministic virtual-time simulation under the given machine model.
    Sim(MachineModel),
    /// One OS *process* per PE, exchanging envelopes over TCP through
    /// `charm-net` (DESIGN.md §13). Worker processes are re-execs of the
    /// current binary (or externally launched, [`charm_net::Spawn`]); a
    /// worker killed mid-run is detected through heartbeats/child-reaping
    /// and — with disk checkpointing armed — respawned and restored.
    Net(charm_net::NetCfg),
}

/// TRAM-style per-destination message aggregation thresholds
/// ([`Runtime::aggregation`], DESIGN.md §9).
///
/// With aggregation on, each PE coalesces small remote entry messages into
/// one per-destination wire frame ([`EnvKind::Batch`]) instead of paying
/// one channel send / one latency event per message. A destination's
/// buffer flushes when either threshold below trips, when the scheduler
/// goes idle, when a quiescence probe arrives (so QD send/deliver samples
/// can converge), or when a checkpoint begins (so no snapshot captures a
/// sender-side parked message).
///
/// [`EnvKind::Batch`]: crate::msg::EnvKind::Batch
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggCfg {
    /// Flush a destination's buffer after this many coalesced messages.
    pub max_count: usize,
    /// Flush when the frame reaches this many bytes. Payloads at or above
    /// this size bypass aggregation entirely — they are already cheap per
    /// byte, and buffering them would only add latency.
    pub max_bytes: usize,
}

impl AggCfg {
    /// A count-threshold config with the default 64 KiB size cap — the
    /// "batch size" knob used by the aggregation bench.
    pub fn count(max_count: usize) -> AggCfg {
        AggCfg {
            max_count,
            ..AggCfg::default()
        }
    }
}

impl Default for AggCfg {
    /// Charm++ TRAM-ish defaults: 64 messages or 64 KiB per flush.
    fn default() -> AggCfg {
        AggCfg {
            max_count: 64,
            max_bytes: 64 * 1024,
        }
    }
}

/// Live sink for merged telemetry frames (runs on PE 0's scheduler).
pub type TelemetrySink = Arc<dyn Fn(&MetricFrame) + Send + Sync>;

/// In-band telemetry configuration ([`Runtime::telemetry`]).
///
/// At every `every`-th completed quiescence round, each PE samples a
/// [`MetricFrame`] (utilization split, message/entry counters, queue
/// depth, execution-time and latency histograms, top-K hot chares) and the
/// frames reduce over the runtime's spanning tree to PE 0 — in-band, on
/// the normal envelope path, so the reduction composes with aggregation,
/// recovery epochs and the model checker. The sweep runs while the
/// quiescence waiters are parked, so it samples a quiescent machine:
/// under the sim backend with metering off the merged frames are a pure
/// function of the program (see [`MetricFrame::logical_digest`]).
///
/// PE 0 retains every merged frame in [`RunReport::telemetry`]; `sink`
/// additionally streams each frame as it completes.
#[derive(Clone)]
pub struct TelemetryCfg {
    /// Sweep cadence in completed quiescence rounds (≥ 1).
    pub every: u64,
    /// Optional live sink invoked on PE 0 with each merged frame.
    pub sink: Option<TelemetrySink>,
}

impl TelemetryCfg {
    /// Sweep at every `every`-th quiescence round, no live sink.
    pub fn every(every: u64) -> TelemetryCfg {
        TelemetryCfg { every, sink: None }
    }

    /// Stream each merged frame to `f` as it completes (in addition to
    /// retaining it in the report).
    pub fn sink(mut self, f: impl Fn(&MetricFrame) + Send + Sync + 'static) -> Self {
        self.sink = Some(Arc::new(f));
        self
    }
}

/// How entry methods dispatch and serialize — the Charm++-vs-CharmPy axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Static dispatch, compact codec (the Charm++/C++ analog).
    Native,
    /// Self-describing pickle codec plus a modeled interpreter overhead
    /// per delivery (the CharmPy/Python analog).
    Dynamic,
}

/// The built-in chare hosting the `main` entry coroutine on PE 0.
pub struct Main;

impl Chare for Main {
    type Msg = ();
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Main {
        Main
    }
    fn receive(&mut self, _: (), _: &mut Ctx) {}
}

/// Why a run could not complete ([`Runtime::try_run`]).
#[derive(Debug)]
pub enum RunError {
    /// Threads backend: a PE saw no message for `idle` and restart recovery
    /// was not armed — the application is presumed hung.
    Hang {
        /// The PE that timed out first.
        pe: Pe,
        /// How long it sat idle.
        idle: Duration,
    },
    /// Threads backend: a PE thread panicked and restart recovery was not
    /// armed.
    PePanic {
        /// The PE whose scheduler died.
        pe: Pe,
        /// The panic message.
        msg: String,
    },
    /// The checkpoint handed to [`Runtime::run_restored`] failed validation.
    Restore(CkptError),
    /// A PE failed, recovery was armed, but no restore source exists (e.g.
    /// no checkpoint generation had committed yet, or the buddy copies died
    /// with their holders).
    RecoveryImpossible {
        /// Why recovery could not proceed.
        reason: String,
        /// The failure that triggered the recovery attempt.
        failure: String,
    },
    /// More PE failures than [`Runtime::max_restarts`] allows.
    RestartsExhausted {
        /// Restarts performed before giving up.
        attempts: u64,
        /// The final failure.
        last: String,
    },
    /// Net backend: a peer process was declared lost (heartbeat timeout or
    /// child-process death after reconnects were exhausted) and restart
    /// recovery was not armed — or, on a worker, the root itself vanished.
    PeerLost {
        /// The lost PE.
        pe: Pe,
        /// The machine incarnation it was lost in.
        incarnation: u64,
    },
    /// Net backend: the process mesh never assembled — a worker failed to
    /// register within the rendezvous window, spawning failed, the worker
    /// environment was torn, or the configuration is unsupported.
    Bootstrap(String),
    /// Net backend: the run completed but shutdown could not finish
    /// cleanly — queued frames were not flushed or a worker's final
    /// statistics never arrived within the drain window.
    Drain(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Hang { pe, idle } => {
                write!(f, "PE {pe} idle for {idle:?} — application hang?")
            }
            RunError::PePanic { pe, msg } => write!(f, "PE {pe} panicked: {msg}"),
            RunError::Restore(e) => write!(f, "restore failed: {e}"),
            RunError::RecoveryImpossible { reason, failure } => {
                write!(f, "cannot recover from \"{failure}\": {reason}")
            }
            RunError::RestartsExhausted { attempts, last } => {
                write!(
                    f,
                    "gave up after {attempts} restart(s); last failure: {last}"
                )
            }
            RunError::PeerLost { pe, incarnation } => {
                write!(
                    f,
                    "peer process for PE {pe} lost in incarnation {incarnation}"
                )
            }
            RunError::Bootstrap(msg) => write!(f, "net bootstrap failed: {msg}"),
            RunError::Drain(msg) => write!(f, "net drain failed: {msg}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Restore(e) => Some(e),
            _ => None,
        }
    }
}

/// Aggregate results of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Host wall-clock duration of the run.
    pub wall: Duration,
    /// Application time: the virtual-time makespan (max PE clock) under the
    /// sim backend, wall time under threads.
    pub time: Duration,
    /// Application + runtime messages handled.
    pub msgs: u64,
    /// Cross-PE payload bytes moved.
    pub bytes: u64,
    /// Entry methods (incl. reduction deliveries) executed.
    pub entries: u64,
    /// Chare migrations performed.
    pub migrations: u64,
    /// Load-balancing epochs completed.
    pub lb_epochs: u64,
    /// Restart recoveries performed (PE failures survived).
    pub recoveries: u64,
    /// Whether the run ended via `exit()` (vs. running out of messages).
    pub clean_exit: bool,
    /// Per-PE message counts, bytes moved, and (above `TraceLevel::Off`)
    /// the busy/idle/overhead decomposition. Always populated. After a
    /// recovery this covers the final incarnation.
    pub pe_stats: Vec<PePerf>,
    /// Full trace (per-entry stats + event rings under full capture);
    /// `None` when tracing was configured off.
    pub trace: Option<TraceReport>,
    /// Cluster-wide telemetry frames reduced to PE 0, one per sweep, in
    /// sweep order ([`Runtime::telemetry`]); empty when telemetry was off.
    pub telemetry: Vec<MetricFrame>,
}

/// Builder/launcher for a charm-rs application.
pub struct Runtime {
    npes: usize,
    backend: Backend,
    dispatch: DispatchMode,
    same_pe_byref: bool,
    meter: bool,
    compute_scale: f64,
    tree: TreeShape,
    lb: Option<Arc<dyn LbStrategy>>,
    lb_mode: LbMode,
    idle_timeout: Duration,
    registry: Registry,
    reducers: CustomReducers,
    placements: Placements,
    restore_dir: Option<std::path::PathBuf>,
    auto_ckpt: Option<(u64, Store)>,
    recover: Option<Arc<dyn Fn(&mut Co<Main>) + Send + Sync>>,
    max_restarts: u64,
    msg_guards: MsgGuards,
    trace: TraceConfig,
    /// In-band telemetry sweeps; `None` = off.
    telemetry: Option<TelemetryCfg>,
    /// TRAM-style per-destination message aggregation; `None` = off
    /// (bit-identical to previous releases).
    agg: Option<AggCfg>,
    /// Per-message fast paths (inline payloads, dispatch cache, threaded
    /// receive ring). On by default; `fast_paths(false)` is the ablation
    /// baseline and must be bit-identical.
    fast_paths: bool,
    /// Sim backend: jitter message delivery order with this seed (FIFO
    /// per channel is preserved). Drives the schedule-permutation harness.
    permute: Option<u64>,
    /// Network fault injected by the sim driver (detector tests).
    #[cfg(feature = "analyze")]
    inject: Option<crate::analyze::InjectFault>,
    /// Findings sink shared with every PE's detector.
    #[cfg(feature = "analyze")]
    probe: Option<crate::analyze::FaultProbe>,
}

impl Runtime {
    /// A runtime with `npes` PEs on the threaded backend, native dispatch.
    pub fn new(npes: usize) -> Runtime {
        assert!(npes >= 1, "need at least one PE");
        Runtime {
            npes,
            backend: Backend::Threads,
            dispatch: DispatchMode::Native,
            same_pe_byref: true,
            meter: true,
            compute_scale: 1.0,
            tree: TreeShape::default(),
            lb: None,
            lb_mode: LbMode::default(),
            idle_timeout: Duration::from_secs(30),
            registry: Registry::default(),
            reducers: CustomReducers::default(),
            placements: Placements::default(),
            restore_dir: None,
            auto_ckpt: None,
            recover: None,
            max_restarts: 3,
            msg_guards: MsgGuards::default(),
            trace: default_trace(),
            telemetry: None,
            agg: None,
            fast_paths: true,
            permute: None,
            #[cfg(feature = "analyze")]
            inject: None,
            #[cfg(feature = "analyze")]
            probe: None,
        }
    }

    /// Sim backend: permute the delivery schedule with a deterministic
    /// seed. Per-channel FIFO order is preserved (as the network
    /// guarantees); everything else — cross-channel interleaving, the order
    /// concurrent messages reach one PE — is jittered. Running the same
    /// program under many seeds and diffing results is the
    /// schedule-permutation harness of DESIGN.md §6.
    pub fn permute_schedule(mut self, seed: u64) -> Self {
        self.permute = Some(seed);
        self
    }

    /// Install a findings probe: detector violations are collected instead
    /// of panicking. Returns the probe for inspection after `run`.
    #[cfg(feature = "analyze")]
    pub fn analyze_probe(mut self) -> (Self, crate::analyze::FaultProbe) {
        let probe = self
            .probe
            .get_or_insert_with(crate::analyze::FaultProbe::new)
            .clone();
        (self, probe)
    }

    /// Inject a fault (tests): network duplicates/drops under the sim
    /// backend, or a PE kill under either backend. The detector must
    /// report network faults through the returned probe; PE kills drive
    /// the restart supervisor.
    #[cfg(feature = "analyze")]
    pub fn analyze_inject(
        mut self,
        fault: crate::analyze::InjectFault,
    ) -> (Self, crate::analyze::FaultProbe) {
        self.inject = Some(fault);
        self.analyze_probe()
    }

    /// Number of PEs this runtime will drive.
    pub fn npes(&self) -> usize {
        self.npes
    }

    /// The configured dispatch mode (and therefore the active wire codec).
    pub fn dispatch_mode(&self) -> DispatchMode {
        self.dispatch
    }

    /// Select the execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand for the simulated backend.
    pub fn simulated(self, model: MachineModel) -> Self {
        self.backend(Backend::Sim(model))
    }

    /// Select the dispatch/serialization mode.
    pub fn dispatch(mut self, mode: DispatchMode) -> Self {
        self.dispatch = mode;
        self
    }

    /// Toggle the same-PE by-reference optimization (paper §II-D) — the
    /// ablation switch; `true` by default.
    pub fn same_pe_byref(mut self, on: bool) -> Self {
        self.same_pe_byref = on;
        self
    }

    /// Sim backend: whether measured handler time is charged to the virtual
    /// clock (`true`, default) or only explicit `ctx.charge` calls count
    /// (`false`, for deterministic tests).
    pub fn meter_compute(mut self, on: bool) -> Self {
        self.meter = on;
        self
    }

    /// Sim backend: scale measured host time by this factor to model a
    /// slower/faster target core.
    pub fn compute_scale(mut self, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0);
        self.compute_scale = scale;
        self
    }

    /// Spanning-tree shape for broadcasts/reductions (§IV-D).
    pub fn tree(mut self, tree: TreeShape) -> Self {
        self.tree = tree;
        self
    }

    /// Install a load-balancing strategy (enables at-sync LB).
    pub fn lb_strategy(mut self, lb: Arc<dyn LbStrategy>) -> Self {
        self.lb = Some(lb);
        self
    }

    /// How at-sync stats are collected and placement decided:
    /// [`LbMode::Central`] (default) gathers every chare stat on PE 0 and
    /// runs the installed [`LbStrategy`]; [`LbMode::Tree`] refines
    /// hierarchically up a group tree so no PE materializes the global
    /// stat vector (the strategy object is not consulted). Sim backend
    /// only for `Tree`.
    pub fn lb_mode(mut self, mode: LbMode) -> Self {
        self.lb_mode = mode;
        self
    }

    /// Threaded backend: how long a PE may sit idle before the run is
    /// declared hung. With recovery armed the hang becomes a restart;
    /// otherwise [`Runtime::try_run`] returns [`RunError::Hang`].
    pub fn idle_timeout(mut self, t: Duration) -> Self {
        self.idle_timeout = t;
        self
    }

    /// Arm automatic checkpointing: at every `every`-th completed
    /// quiescence round, PE 0 snapshots the whole machine into `store` —
    /// buddy in-memory copies ([`Store::Memory`]), or atomic per-generation
    /// directories on disk ([`Store::Disk`]). The snapshot is taken while
    /// the machine is quiescent, so it is globally consistent; quiescence
    /// waiters resume only after every PE commits. Combine with
    /// [`Runtime::recover_with`] for automatic restart-recovery.
    pub fn auto_checkpoint(mut self, every: u64, store: Store) -> Self {
        assert!(every > 0, "auto_checkpoint cadence must be at least 1");
        self.auto_ckpt = Some((every, store));
        self
    }

    /// Entry kick used by restart recovery: after the supervisor restores
    /// the newest complete checkpoint generation, this runs as the new main
    /// coroutine (the original `run` entry was consumed by the first
    /// incarnation). It should re-kick the application — e.g. re-broadcast
    /// the driving message — discovering progress from restored chare
    /// state, exactly like the `run_restored` entry.
    pub fn recover_with(mut self, f: impl Fn(&mut Co<Main>) + Send + Sync + 'static) -> Self {
        self.recover = Some(Arc::new(f));
        self
    }

    /// Cap on automatic restarts per run (default 3).
    pub fn max_restarts(mut self, n: u64) -> Self {
        self.max_restarts = n;
        self
    }

    /// Configure tracing (Projections-style, DESIGN.md §7). The default is
    /// [`TraceConfig::counters`] — cheap always-on aggregates — or full
    /// event capture when built with `--features trace`.
    pub fn trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = cfg;
        self
    }

    /// Arm in-band telemetry (see [`TelemetryCfg`]): at every
    /// `cfg.every`-th completed quiescence round, per-PE [`MetricFrame`]s
    /// reduce over the spanning tree to PE 0, which retains the series in
    /// [`RunReport::telemetry`] and streams each frame to `cfg.sink`.
    pub fn telemetry(mut self, cfg: TelemetryCfg) -> Self {
        assert!(cfg.every > 0, "telemetry cadence must be at least 1");
        self.telemetry = Some(cfg);
        self
    }

    /// Coalesce small remote entry messages into per-destination batches
    /// (Charm++'s TRAM; see [`AggCfg`] for the flush triggers). Off by
    /// default — without this call, behaviour is bit-identical to an
    /// unaggregated runtime. Logical counters (`RunReport::msgs`,
    /// `PePerf::msgs_sent`, QD accounting) are unaffected by batching;
    /// the physical envelope count shows up in `PePerf::batches_sent`.
    pub fn aggregation(mut self, cfg: AggCfg) -> Self {
        assert!(
            cfg.max_count >= 1 && cfg.max_bytes >= 1,
            "aggregation thresholds must be at least 1"
        );
        self.agg = Some(cfg);
        self
    }

    /// Toggle the per-message fast paths: small-payload inlining (no `Arc`
    /// under ~64B), batched-record inline re-publish, the devirtualized
    /// entry-dispatch cache and the threaded backend's burst-drain receive
    /// ring. On by default. `fast_paths(false)` reproduces the pre-fast-path
    /// runtime — results are bit-identical either way (the taskbench
    /// identity suite pins this), only the per-message overhead moves.
    pub fn fast_paths(mut self, on: bool) -> Self {
        self.fast_paths = on;
        self
    }

    /// Register a chare type (every type used must be registered).
    pub fn register<T: Chare>(mut self) -> Self {
        self.registry.register::<T>();
        self
    }

    /// Register a *migratable* chare type (state must be serde-able).
    pub fn register_migratable<T: Chare + serde::Serialize + serde::de::DeserializeOwned>(
        mut self,
    ) -> Self {
        self.registry.register_migratable::<T>();
        self
    }

    /// Register a custom reducer (CharmPy's `Reducer.addReducer`).
    pub fn add_reducer(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(Vec<RedData>) -> RedData + Send + Sync + 'static,
    ) -> Reducer {
        self.reducers.register(name, f)
    }

    /// Register a per-message when-condition for chare type `T` (the
    /// sender-side conditions of paper §II-E): messages sent with
    /// `Proxy::send_when(msg, guard)` are buffered at the receiver until
    /// `pred(chare, msg)` holds.
    pub fn add_msg_guard<T: Chare>(
        &mut self,
        pred: impl Fn(&T, &T::Msg) -> bool + Send + Sync + 'static,
    ) -> MsgGuard {
        self.msg_guards.register::<T>(pred)
    }

    /// Register a custom placement function (CharmPy's `ArrayMap`).
    pub fn add_placement(
        &mut self,
        f: impl Fn(&crate::ids::Index, usize) -> Pe + Send + Sync + 'static,
    ) -> Placement {
        self.placements.register(f)
    }

    /// Start the runtime from a checkpoint written by `Ctx::checkpoint` or
    /// an automatic [`Store::Disk`] generation: collections and chares are
    /// restored (redistributed by placement if the PE count changed) before
    /// `entry` runs; `entry` re-kicks the application, e.g. by
    /// re-broadcasting its start message.
    pub fn run_restored(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        entry: impl FnOnce(&mut Co<Main>) + Send + 'static,
    ) -> RunReport {
        self.restore_dir = Some(dir.into());
        self.run(entry)
    }

    /// Start the runtime: `entry` runs as an automatically-threaded main
    /// coroutine on PE 0 (paper §II-B). Returns when `exit()` is called (or,
    /// under sim, when no messages remain). Panics on [`RunError`] — use
    /// [`Runtime::try_run`] to handle failures structurally.
    pub fn run(self, entry: impl FnOnce(&mut Co<Main>) + Send + 'static) -> RunReport {
        match self.try_run(entry) {
            Ok(report) => report,
            // run() is the panicking convenience wrapper; try_run returns
            // failures structurally.
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Runtime::run`], but a PE hang, an unrecovered PE death or an
    /// invalid restore source comes back as a typed [`RunError`] instead of
    /// a panic.
    pub fn try_run(
        mut self,
        entry: impl FnOnce(&mut Co<Main>) + Send + 'static,
    ) -> Result<RunReport, RunError> {
        install_quiet_shutdown_hook();
        self.registry.register::<Main>();
        let codec = match self.dispatch {
            DispatchMode::Native => Codec::Fast,
            DispatchMode::Dynamic => Codec::Pickle,
        };
        let (is_sim, sim_model) = match &self.backend {
            Backend::Threads | Backend::Net(_) => (false, None),
            Backend::Sim(m) => (true, Some(m.clone())),
        };
        // Telemetry sweeps reduce `MetricFrame`s, which carry quantile
        // sketches with no wire form — unsupported across processes (§13.5).
        if matches!(self.backend, Backend::Net(_)) && self.telemetry.is_some() {
            return Err(RunError::Bootstrap(
                "telemetry sweeps are not supported on the Net backend".into(),
            ));
        }
        // The hierarchical LB protocol's control messages have no wire
        // form (orders are issued mid-fold from interior PEs, which the
        // multi-process completion accounting does not cover yet).
        if matches!(self.backend, Backend::Net(_)) && matches!(self.lb_mode, LbMode::Tree { .. }) {
            return Err(RunError::Bootstrap(
                "hierarchical LB (LbMode::Tree) is not supported on the Net backend".into(),
            ));
        }
        // Pre-validate a directory restore — a bad set is a typed error
        // here, not a panic mid-bootstrap — and start fresh checkpoint
        // generations strictly after the restored one.
        let mut ckpt_seq_start = 1;
        let restore = match self.restore_dir.take() {
            Some(dir) => {
                let files = checkpoint::read_all(&dir).map_err(RunError::Restore)?;
                ckpt_seq_start = files[0].epoch + 1;
                Some(RestoreFrom::Dir(dir))
            }
            None => None,
        };
        let registry = Arc::new(std::mem::take(&mut self.registry));
        let placements = Arc::new(self.placements.clone());
        let reducers = Arc::new(self.reducers.clone());
        let entry_fn: crate::pe::CoroLauncher =
            Box::new(move |side| run_coroutine::<Main>(side, entry));
        // analyze: allow(nondeterminism, "wall-clock origin: feeds the report's wall field and the threads backend's real-time clocks; sim ordering runs on virtual time")
        let start = Instant::now();

        // The restart supervisor rebuilds the scheduler config per
        // incarnation (new epoch, new restore source), so the pieces are
        // captured once here.
        let mk_cfg: Box<dyn Fn(u64, Option<RestoreFrom>, u64) -> Arc<SchedCfg>> = {
            let dynamic = self.dispatch == DispatchMode::Dynamic;
            let same_pe_byref = self.same_pe_byref;
            let tree = self.tree;
            let lb = self.lb.clone();
            let lb_mode = self.lb_mode;
            let meter = self.meter;
            let compute_scale = self.compute_scale;
            let sim_model = sim_model.clone();
            let auto_ckpt = self.auto_ckpt.clone();
            let msg_guards = Arc::new(self.msg_guards.clone());
            let trace = self.trace;
            let agg = self.agg;
            let telemetry = self.telemetry.clone();
            let fast_paths = self.fast_paths;
            #[cfg(feature = "analyze")]
            let probe = self.probe.clone();
            Box::new(move |epoch, restore, ckpt_seq_start| {
                Arc::new(SchedCfg {
                    codec,
                    dynamic,
                    same_pe_byref,
                    tree,
                    lb: lb.clone(),
                    lb_mode,
                    meter,
                    compute_scale,
                    sim_model: sim_model.clone(),
                    is_sim,
                    restore,
                    epoch,
                    ckpt_seq_start,
                    auto_ckpt: auto_ckpt.clone(),
                    msg_guards: Arc::clone(&msg_guards),
                    trace,
                    agg,
                    telemetry: telemetry.clone(),
                    fast_paths,
                    #[cfg(feature = "analyze")]
                    analyze_probe: probe.clone(),
                })
            })
        };
        let launch = Launch {
            npes: self.npes,
            registry,
            placements,
            reducers,
            start,
            mk_cfg,
            auto: self.auto_ckpt.clone(),
            recover: self.recover.clone(),
            max_restarts: self.max_restarts,
            restore,
            ckpt_seq_start,
        };

        match self.backend {
            Backend::Threads => run_threads(
                launch,
                self.idle_timeout,
                entry_fn,
                #[cfg(feature = "analyze")]
                self.inject,
            ),
            Backend::Sim(model) => run_sim(
                launch,
                model,
                entry_fn,
                self.permute,
                #[cfg(feature = "analyze")]
                self.inject,
            ),
            Backend::Net(netcfg) => crate::net::run_net(
                launch,
                netcfg,
                self.idle_timeout,
                entry_fn,
                #[cfg(feature = "analyze")]
                self.inject,
            ),
        }
    }
}

#[cfg(feature = "analyze")]
impl Runtime {
    /// Systematically explore every delivery schedule of the program up to
    /// happens-before equivalence (DESIGN.md §11): the sim backend is
    /// re-run under a controlled scheduler while `charm-check`'s DPOR
    /// engine enumerates interleavings, stopping at the first detector
    /// violation, panic, run error, or oracle mismatch. The failing
    /// schedule is shrunk and (with [`CheckCfg::artifact`] set) written as
    /// a replay artifact for [`Runtime::replay_schedule`].
    ///
    /// `entry` must be re-runnable — each explored execution restarts the
    /// program from scratch — hence `Fn`, not the `FnOnce` of
    /// [`Runtime::run`]. Compute metering is forced off so executions are
    /// pure functions of their delivery order; the backend setting is
    /// ignored (exploration always drives the controlled sim loop).
    pub fn check(
        self,
        cfg: crate::check::CheckCfg,
        entry: impl Fn(&mut Co<Main>) + Send + Sync + 'static,
    ) -> crate::check::CheckReport {
        crate::check::run_check(self.into_check_driver(Arc::new(entry)), cfg)
    }

    /// Replay a schedule artifact written by [`Runtime::check`],
    /// bit-identically: the same runtime configuration plus the same
    /// artifact always produces the same delivery sequence, clocks and
    /// outcome (compare [`crate::check::ReplayOutcome::digest`] across
    /// runs to assert it).
    pub fn replay_schedule(
        self,
        path: impl AsRef<std::path::Path>,
        entry: impl Fn(&mut Co<Main>) + Send + Sync + 'static,
    ) -> std::io::Result<crate::check::ReplayOutcome> {
        let schedule = charm_check::Schedule::load(path.as_ref())?;
        Ok(crate::check::run_replay(
            self.into_check_driver(Arc::new(entry)),
            &schedule,
        ))
    }

    /// Package the builder's pieces for the controlled driver — the model
    /// checker's analog of the `Launch` the restart supervisors use.
    fn into_check_driver(
        mut self,
        entry: Arc<dyn Fn(&mut Co<Main>) + Send + Sync>,
    ) -> crate::check::Driver {
        assert!(
            self.restore_dir.is_none(),
            "Runtime::check starts from scratch every execution; run_restored is not supported"
        );
        install_quiet_shutdown_hook();
        self.registry.register::<Main>();
        let codec = match self.dispatch {
            DispatchMode::Native => Codec::Fast,
            DispatchMode::Dynamic => Codec::Pickle,
        };
        // Exploration always runs the controlled sim loop; a configured sim
        // model is honored, the threads backend falls back to the default
        // model (only default delivery *priorities* depend on it).
        let model = match &self.backend {
            Backend::Sim(m) => m.clone(),
            Backend::Threads | Backend::Net(_) => MachineModel::default(),
        };
        let registry = Arc::new(std::mem::take(&mut self.registry));
        let placements = Arc::new(self.placements.clone());
        let reducers = Arc::new(self.reducers.clone());
        let mk_cfg: crate::check::MkCfg = {
            let dynamic = self.dispatch == DispatchMode::Dynamic;
            let same_pe_byref = self.same_pe_byref;
            let tree = self.tree;
            let lb = self.lb.clone();
            let lb_mode = self.lb_mode;
            let compute_scale = self.compute_scale;
            let model = model.clone();
            let auto_ckpt = self.auto_ckpt.clone();
            let msg_guards = Arc::new(self.msg_guards.clone());
            let trace = self.trace;
            let agg = self.agg;
            let telemetry = self.telemetry.clone();
            let fast_paths = self.fast_paths;
            Box::new(move |epoch, restore, ckpt_seq_start, probe| {
                Arc::new(SchedCfg {
                    codec,
                    dynamic,
                    same_pe_byref,
                    tree,
                    lb: lb.clone(),
                    lb_mode,
                    // Metering ties virtual time to measured host time;
                    // forced off so an execution is a pure function of its
                    // delivery order (the replay bit-identity contract).
                    meter: false,
                    compute_scale,
                    sim_model: Some(model.clone()),
                    is_sim: true,
                    restore,
                    epoch,
                    ckpt_seq_start,
                    auto_ckpt: auto_ckpt.clone(),
                    msg_guards: Arc::clone(&msg_guards),
                    trace,
                    agg,
                    telemetry: telemetry.clone(),
                    fast_paths,
                    analyze_probe: Some(probe),
                })
            })
        };
        crate::check::Driver {
            npes: self.npes,
            model,
            registry,
            placements,
            reducers,
            mk_cfg,
            auto: self.auto_ckpt.clone(),
            recover: self.recover.clone(),
            max_restarts: self.max_restarts,
            inject: self.inject,
            entry,
        }
    }
}

/// Everything needed to (re)build a machine incarnation; the restart
/// supervisors re-launch from this after a PE failure.
pub(crate) struct Launch {
    pub(crate) npes: usize,
    registry: Arc<Registry>,
    placements: Arc<Placements>,
    reducers: Arc<CustomReducers>,
    pub(crate) start: Instant,
    pub(crate) mk_cfg: Box<dyn Fn(u64, Option<RestoreFrom>, u64) -> Arc<SchedCfg>>,
    pub(crate) auto: Option<(u64, Store)>,
    recover: Option<Arc<dyn Fn(&mut Co<Main>) + Send + Sync>>,
    pub(crate) max_restarts: u64,
    /// Restore source for the *first* incarnation (`run_restored`).
    pub(crate) restore: Option<RestoreFrom>,
    /// First checkpoint generation the first incarnation may mint.
    pub(crate) ckpt_seq_start: u64,
}

impl Launch {
    pub(crate) fn mk_pe(
        &self,
        pe: Pe,
        entry: Option<crate::pe::CoroLauncher>,
        cfg: &Arc<SchedCfg>,
    ) -> PeState {
        PeState::new(
            pe,
            self.npes,
            Arc::clone(cfg),
            Arc::clone(&self.registry),
            Arc::clone(&self.placements),
            Arc::clone(&self.reducers),
            self.start,
            entry,
        )
    }

    /// Fresh launcher for the recovery entry (it is a reusable `Fn`, unlike
    /// the `FnOnce` consumed by the first incarnation).
    pub(crate) fn recovery_entry(&self) -> Option<crate::pe::CoroLauncher> {
        let f = Arc::clone(self.recover.as_ref()?);
        Some(Box::new(move |side| {
            run_coroutine::<Main>(side, move |co: &mut Co<Main>| f(co))
        }))
    }

    /// Whether a PE failure can even be turned into a restart.
    pub(crate) fn recovery_armed(&self) -> bool {
        self.auto.is_some() && self.recover.is_some()
    }

    /// Locate the newest complete checkpoint generation after a failure:
    /// the highest intact `ckpt-<epoch>/` directory under [`Store::Disk`],
    /// or a full image set assembled from the salvaged in-memory stores
    /// under [`Store::Memory`] (a PE's own image when its store survived,
    /// the buddy-held copy otherwise). Returns `(generation, source)`.
    pub(crate) fn recovery_source(
        &self,
        stores: &[Option<CkptStore>],
    ) -> Result<(u64, RestoreFrom), String> {
        let store = match &self.auto {
            Some((_, s)) => s,
            None => return Err("automatic checkpointing is not armed".into()),
        };
        match store {
            Store::Disk(root) => checkpoint::latest_complete_dir(root)
                .map(|(epoch, dir)| (epoch, RestoreFrom::Dir(dir)))
                .map_err(|e| e.to_string()),
            Store::Memory => {
                let mut epochs: Vec<u64> =
                    stores.iter().flatten().flat_map(|s| s.epochs()).collect();
                epochs.sort_unstable();
                epochs.dedup();
                for &epoch in epochs.iter().rev() {
                    if let Some(files) = assemble_images(stores, self.npes, epoch) {
                        return Ok((epoch, RestoreFrom::Images(files)));
                    }
                }
                Err("no complete in-memory checkpoint generation survives the failure".into())
            }
        }
    }
}

/// Assemble one checkpoint generation from per-PE salvage: PE `i`'s image
/// comes from its own store when that survived, else from the buddy copy
/// held on PE `(i+1) % npes`. `None` unless every PE's image is present
/// and decodes.
pub(crate) fn assemble_images(
    stores: &[Option<CkptStore>],
    npes: usize,
    epoch: u64,
) -> Option<Vec<CkptFile>> {
    let mut files = Vec::with_capacity(npes);
    for pe in 0..npes {
        let own = stores[pe].as_ref().and_then(|s| s.own_at(epoch));
        let held = stores[(pe + 1) % npes]
            .as_ref()
            .and_then(|s| s.held_at(pe, epoch));
        let image = own.or(held)?;
        files.push(checkpoint::decode_image(image).ok()?);
    }
    Some(files)
}

/// How one PE thread's scheduler loop ended.
enum PeEnd {
    /// Clean `Exit`/`Halt`, or channel disconnect.
    Done,
    /// The scheduler loop panicked (an entry method, or an injected kill).
    Panicked(String),
    /// No message arrived within the idle timeout.
    Hung(Duration),
}

/// The failure that brought an incarnation down.
enum Failure {
    Panic(String),
    Hang(Duration),
}

impl Failure {
    fn describe(&self, pe: Pe) -> String {
        match self {
            Failure::Panic(msg) => format!("PE {pe} panicked: {msg}"),
            Failure::Hang(idle) => format!("PE {pe} idle for {idle:?}"),
        }
    }
}

pub(crate) fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_threads(
    mut launch: Launch,
    idle_timeout: Duration,
    entry_fn: crate::pe::CoroLauncher,
    #[cfg(feature = "analyze")] inject: Option<crate::analyze::InjectFault>,
) -> Result<RunReport, RunError> {
    use crossbeam::channel;

    let npes = launch.npes;
    let mut entry_slot = Some(entry_fn);
    let mut restore = launch.restore.take();
    let mut seq_start = launch.ckpt_seq_start;
    let mut recoveries = 0u64;

    for epoch in 0u64.. {
        let cfg = (launch.mk_cfg)(epoch, restore.take(), seq_start);
        // First incarnation runs the user's entry; restarts run the
        // recovery entry (the supervisor checked it exists before looping).
        let mut entry = match entry_slot.take() {
            Some(e) => Some(e),
            None => launch.recovery_entry(),
        };
        // An injected PE kill fires only in the first incarnation.
        #[cfg(feature = "analyze")]
        let kill = match inject {
            Some(crate::analyze::InjectFault::KillPe { pe, after_nth }) if epoch == 0 => {
                Some((pe, after_nth))
            }
            _ => None,
        };

        let mut senders = Vec::with_capacity(npes);
        let mut receivers = Vec::with_capacity(npes);
        for _ in 0..npes {
            let (tx, rx) = channel::unbounded::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut boot = Envelope::new(0, EnvKind::Bootstrap);
        boot.epoch = epoch;
        senders[0].send(boot).expect("bootstrap send failed");

        type Status = (Pe, PeEnd, PeTrace, u64, CkptStore);
        let (status_tx, status_rx) = channel::unbounded::<Status>();
        for (pe, rx) in receivers.into_iter().enumerate() {
            let mut state = launch.mk_pe(pe, if pe == 0 { entry.take() } else { None }, &cfg);
            if pe == 0 && epoch > 0 && state.tracer.full() {
                let now = state.now_ns();
                state
                    .tracer
                    .push(now, charm_trace::EventKind::Recovery { epoch });
            }
            let senders = senders.clone();
            let status_tx = status_tx.clone();
            std::thread::Builder::new()
                .name(format!("pe-{pe}"))
                .spawn(move || {
                    #[cfg(feature = "analyze")]
                    let mut qd_handled = 0u64;
                    // The scheduler loop runs under `catch_unwind` so a
                    // dying PE reports its end (and its salvageable buddy
                    // images) instead of taking the process down.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        // Fast path: one channel drain per wakeup fills a
                        // local ring, so the hot loop pops envelopes without
                        // paying channel synchronization per message; a short
                        // sticky spin before the blocking wait absorbs
                        // ping-pong gaps without a sleep/wake round trip.
                        let fast = state.cfg.fast_paths;
                        const RING_BURST: usize = 256;
                        const STICKY_SPINS: u32 = 64;
                        let mut ring: VecDeque<Envelope> = VecDeque::new();
                        loop {
                            // Batched receive: drain the channel in bursts —
                            // one `try_recv` per envelope while the queue is
                            // hot, and the idle bookkeeping (two `now_ns`
                            // reads) only on the transition to the blocking
                            // wait, not per envelope.
                            let env = if let Some(env) = ring.pop_front() {
                                env
                            } else {
                                match rx.try_recv() {
                                    Ok(env) => {
                                        if fast {
                                            while ring.len() < RING_BURST {
                                                match rx.try_recv() {
                                                    Ok(e) => ring.push_back(e),
                                                    Err(_) => break,
                                                }
                                            }
                                        }
                                        env
                                    }
                                    Err(channel::TryRecvError::Disconnected) => return None,
                                    Err(channel::TryRecvError::Empty) => {
                                        // Sticky backoff: spin briefly before
                                        // committing to the blocking wait.
                                        let mut spun = None;
                                        if fast {
                                            for _ in 0..STICKY_SPINS {
                                                std::hint::spin_loop();
                                                if let Ok(env) = rx.try_recv() {
                                                    spun = Some(env);
                                                    break;
                                                }
                                            }
                                        }
                                        if let Some(env) = spun {
                                            env
                                        } else {
                                            // Going idle: release anything parked in
                                            // the aggregation buffers — nobody else
                                            // will flush traffic we are sitting on.
                                            let flush_from = if state.tracer.enabled() {
                                                Some(state.now_ns())
                                            } else {
                                                None
                                            };
                                            if state.flush_aggregation() {
                                                for (dst, env) in state.outbox.drain(..) {
                                                    let _ = senders[dst].send(env);
                                                }
                                            }
                                            // Time spent waiting on the channel is
                                            // the threaded backend's idle time; the
                                            // flush work before it is runtime
                                            // overhead, not idle — otherwise summary
                                            // quanta would not sum to wall time.
                                            let idle_from = flush_from.map(|f0| {
                                                let t0 = state.now_ns();
                                                state.tracer.work_at(
                                                    WorkClass::Overhead,
                                                    t0 - f0,
                                                    t0,
                                                );
                                                t0
                                            });
                                            let env = match rx.recv_timeout(idle_timeout) {
                                                Ok(env) => env,
                                                Err(channel::RecvTimeoutError::Timeout) => {
                                                    return Some(idle_timeout);
                                                }
                                                Err(channel::RecvTimeoutError::Disconnected) => {
                                                    return None;
                                                }
                                            };
                                            if let Some(t0) = idle_from {
                                                let t1 = state.now_ns();
                                                state.tracer.idle(t0, t1);
                                            }
                                            env
                                        }
                                    }
                                }
                            };
                            #[cfg(feature = "analyze")]
                            if let Some((victim, after_nth)) = kill {
                                // Weighted by constituent count so a batch
                                // advances the delivery clock like the
                                // messages it carries would have unbatched.
                                let w = env.kind.qd_weight();
                                if victim == pe && w > 0 && env.epoch == 0 {
                                    let n = qd_handled;
                                    qd_handled += w;
                                    if n <= after_nth && after_nth < n + w {
                                        // The injected PE failure is a deliberate
                                        // panic the restart supervisor must catch
                                        // and recover from.
                                        panic!(
                                            "injected PE failure on PE {pe} (after {after_nth} deliveries)"
                                        );
                                    }
                                }
                            }
                            state.handle(env);
                            for (dst, env) in state.outbox.drain(..) {
                                // A send failing means the destination
                                // already exited — the message is moot.
                                let _ = senders[dst].send(env);
                            }
                            if state.exited {
                                return None;
                            }
                        }
                    }));
                    let end = match outcome {
                        Ok(Some(idle)) => PeEnd::Hung(idle),
                        Ok(None) => PeEnd::Done,
                        Err(p) => PeEnd::Panicked(panic_msg(p)),
                    };
                    let trace = state.finish_trace();
                    let lb = state.lb_epochs();
                    let store = std::mem::take(&mut state.ckpt_store);
                    let _ = status_tx.send((pe, end, trace, lb, store));
                })
                .expect("failed to spawn PE thread");
        }
        drop(status_tx);

        // Collect every PE's end. On the first failure, broadcast `Halt` so
        // surviving PEs stop and report their salvage; from then on wait at
        // most a grace period — an unresponsive thread (stuck inside a
        // handler) is leaked, and the buddy copies cover its images.
        let mut traces: Vec<Option<PeTrace>> = (0..npes).map(|_| None).collect();
        let mut stores: Vec<Option<CkptStore>> = (0..npes).map(|_| None).collect();
        let mut lb_total = 0u64;
        let mut dead: Option<(Pe, Failure)> = None;
        let mut deadline: Option<Instant> = None;
        let mut got = 0usize;
        while got < npes {
            let received = match deadline {
                None => status_rx.recv().ok(),
                Some(d) => status_rx
                    // analyze: allow(nondeterminism, "threads-backend supervisor deadline; wall time by design, the sim driver never runs this loop")
                    .recv_timeout(d.saturating_duration_since(Instant::now()))
                    .ok(),
            };
            let Some((pe, end, trace, lb, store)) = received else {
                break;
            };
            got += 1;
            traces[pe] = Some(trace);
            lb_total += lb;
            let failure = match end {
                PeEnd::Done => {
                    stores[pe] = Some(store);
                    None
                }
                // A panicked PE is dead: its memory is gone in the machine
                // model, so its salvage is dropped and recovery must come
                // from the buddy copy (or disk).
                PeEnd::Panicked(msg) => Some(Failure::Panic(msg)),
                PeEnd::Hung(idle) => {
                    stores[pe] = Some(store);
                    Some(Failure::Hang(idle))
                }
            };
            if let Some(f) = failure {
                if dead.is_none() {
                    dead = Some((pe, f));
                    // analyze: allow(nondeterminism, "threads-backend supervisor deadline; wall time by design, the sim driver never runs this loop")
                    deadline = Some(Instant::now() + idle_timeout + Duration::from_secs(2));
                    for tx in &senders {
                        let mut halt = Envelope::new(0, EnvKind::Halt);
                        halt.epoch = epoch;
                        let _ = tx.send(halt);
                    }
                }
            }
        }
        drop(senders);

        let Some((dead_pe, fail)) = dead else {
            let wall = launch.start.elapsed();
            let traces: Vec<PeTrace> = traces.into_iter().flatten().collect();
            return Ok(finish_report(
                wall, wall, lb_total, recoveries, true, traces,
            ));
        };
        if !launch.recovery_armed() {
            return Err(match fail {
                Failure::Panic(msg) => RunError::PePanic { pe: dead_pe, msg },
                Failure::Hang(idle) => RunError::Hang { pe: dead_pe, idle },
            });
        }
        if recoveries >= launch.max_restarts {
            return Err(RunError::RestartsExhausted {
                attempts: recoveries,
                last: fail.describe(dead_pe),
            });
        }
        let (generation, src) = match launch.recovery_source(&stores) {
            Ok(x) => x,
            Err(reason) => {
                return Err(RunError::RecoveryImpossible {
                    reason,
                    failure: fail.describe(dead_pe),
                });
            }
        };
        recoveries += 1;
        restore = Some(src);
        seq_start = generation + 1;
    }
    unreachable!("restart loop returns from within");
}

/// Fold the per-PE traces into the run report (shared by both backends and
/// the model checker's controlled driver).
pub(crate) fn finish_report(
    wall: Duration,
    time: Duration,
    lb_epochs: u64,
    recoveries: u64,
    clean_exit: bool,
    pes: Vec<PeTrace>,
) -> RunReport {
    let mut msgs = 0;
    let mut bytes = 0;
    let mut entries = 0;
    let mut migrations = 0;
    for t in &pes {
        msgs += t.perf.msgs_processed;
        bytes += t.perf.bytes_sent_remote;
        entries += t.perf.entries;
        migrations += t.perf.migrations;
    }
    let enabled = pes.iter().any(|t| t.enabled);
    let pe_stats = pes.iter().map(|t| t.perf.clone()).collect();
    // Telemetry frames land only on the reduction root (PE 0), but collect
    // from every PE so a custom tree root still surfaces its series.
    let telemetry: Vec<MetricFrame> = pes
        .iter()
        .flat_map(|t| t.telemetry.iter().cloned())
        .collect();
    RunReport {
        wall,
        time,
        msgs,
        bytes,
        entries,
        migrations,
        lb_epochs,
        recoveries,
        clean_exit,
        pe_stats,
        telemetry,
        trace: enabled.then(|| TraceReport { pes }),
    }
}

/// Ship one PE's drained outbox into the sim event queue: per envelope,
/// optionally inject a network fault, model the latency, apply the schedule
/// permutation, and (under `analyze`) clamp per-channel arrivals FIFO. An
/// aggregation batch passes through here as ONE envelope — one latency
/// event for the whole frame is the modeled win of aggregation; the
/// receiver then pays per-message unpack cost when it splits the frame.
#[allow(clippy::too_many_arguments)]
fn ship_outbox(
    src: Pe,
    now_ns: u64,
    outbox: &mut Vec<(Pe, Envelope)>,
    model: &MachineModel,
    permuter: &mut Option<charm_sim::PermuteSchedule>,
    events: &mut EventQueue<(Pe, Envelope)>,
    #[cfg(feature = "analyze")] inject_state: &mut Option<(crate::analyze::InjectFault, u64)>,
    #[cfg(feature = "analyze")] last_arrival: &mut std::collections::HashMap<(Pe, Pe), u64>,
) {
    // Drained in place: the caller keeps the Vec so its capacity is reused
    // for the next event instead of reallocating once per delivery.
    for (dst, env) in outbox.drain(..) {
        #[cfg(feature = "analyze")]
        let mut duplicate: Option<Envelope> = None;
        #[cfg(feature = "analyze")]
        if let Some((fault, count)) = inject_state {
            if env.kind.counts_for_qd() {
                let n = *count;
                *count += 1;
                match *fault {
                    crate::analyze::InjectFault::DropNth(k) if k == n => continue,
                    crate::analyze::InjectFault::DuplicateNth(k) if k == n => {
                        duplicate = env.try_clone();
                    }
                    _ => {}
                }
            }
        }
        let delay = model.msg_delay(src, dst, env.kind.size_hint());
        let mut at = VTime::from_nanos(now_ns) + delay;
        if let Some(p) = permuter {
            at = p.delivery_time(src, dst, at);
        }
        #[cfg(feature = "analyze")]
        {
            let last = last_arrival.entry((src, dst)).or_insert(0);
            if at.as_nanos() <= *last {
                at = VTime::from_nanos(*last + 1);
            }
            *last = at.as_nanos();
        }
        events.push(at, (dst, env));
        #[cfg(feature = "analyze")]
        if let Some(dup) = duplicate {
            // The duplicate trails the original on the same channel,
            // like a network-level retransmission.
            let at2 = VTime::from_nanos(at.as_nanos() + 1);
            last_arrival.insert((src, dst), at2.as_nanos());
            events.push(at2, (dst, dup));
        }
    }
}

fn run_sim(
    mut launch: Launch,
    model: MachineModel,
    entry_fn: crate::pe::CoroLauncher,
    permute: Option<u64>,
    #[cfg(feature = "analyze")] inject: Option<crate::analyze::InjectFault>,
) -> Result<RunReport, RunError> {
    let npes = launch.npes;
    // The epoch/cfg/recovery state only changes on an injected PE kill,
    // which exists under `analyze` alone — hence the gated `mut`s.
    #[cfg_attr(not(feature = "analyze"), allow(unused_mut))]
    let mut cur_epoch = 0u64;
    #[cfg_attr(not(feature = "analyze"), allow(unused_mut))]
    let mut cfg = (launch.mk_cfg)(cur_epoch, launch.restore.take(), launch.ckpt_seq_start);
    let mut entry_slot = Some(entry_fn);
    let mut pes: Vec<PeState> = (0..npes)
        .map(|pe| launch.mk_pe(pe, if pe == 0 { entry_slot.take() } else { None }, &cfg))
        .collect();
    let mut events: EventQueue<(Pe, Envelope)> = EventQueue::new();
    events.push(VTime::ZERO, (0, Envelope::new(0, EnvKind::Bootstrap)));
    #[cfg_attr(not(feature = "analyze"), allow(unused_mut))]
    let mut recoveries = 0u64;

    // Schedule permutation: deterministic per-seed jitter on delivery
    // times, preserving per-channel FIFO (the ordering real networks and
    // the threads backend guarantee).
    let mut permuter = permute.map(charm_sim::PermuteSchedule::new);
    // Per-channel arrival clamp: the baseline delay model is size-dependent
    // and may reorder one channel's messages; under the detector we pin
    // channels FIFO so an ordering violation is a runtime bug, not a model
    // artifact.
    #[cfg(feature = "analyze")]
    let mut last_arrival: std::collections::HashMap<(Pe, Pe), u64> =
        std::collections::HashMap::new();
    // Network fault injection: (fault, count of QD-counted envelopes shipped).
    #[cfg(feature = "analyze")]
    let mut inject_state = match inject {
        Some(crate::analyze::InjectFault::KillPe { .. }) | None => None,
        Some(f) => Some((f, 0u64)),
    };
    // PE-kill injection: (victim, after_nth, deliveries seen). Armed only
    // until it fires, so the recovery attempt is not re-killed.
    #[cfg(feature = "analyze")]
    let mut kill = match inject {
        Some(crate::analyze::InjectFault::KillPe { pe, after_nth }) => Some((pe, after_nth, 0u64)),
        _ => None,
    };

    let mut clean_exit = false;
    loop {
        let Some((t, (pe, env))) = events.pop() else {
            // The event queue drained — but with aggregation on, traffic
            // may still be parked in sender-side buffers (nothing else in
            // flight will flush them). This is the scheduler-idle flush
            // trigger: release every PE's buffers at its own clock, in PE
            // order (deterministic), and keep simulating. A quiescent
            // machine with empty buffers falls through to the exit path.
            let mut flushed = false;
            for src in 0..npes {
                if pes[src].flush_aggregation() {
                    flushed = true;
                    let state = &mut pes[src];
                    let now = state.clock_ns;
                    ship_outbox(
                        src,
                        now,
                        &mut state.outbox,
                        &model,
                        &mut permuter,
                        &mut events,
                        #[cfg(feature = "analyze")]
                        &mut inject_state,
                        #[cfg(feature = "analyze")]
                        &mut last_arrival,
                    );
                }
            }
            if flushed {
                continue;
            }
            break;
        };
        #[cfg(feature = "analyze")]
        {
            let mut fire = false;
            if let Some((victim, after_nth, count)) = &mut kill {
                // Weighted by constituent count so a batch advances the
                // delivery clock like the messages it carries would have
                // unbatched.
                let w = env.kind.qd_weight();
                if *victim == pe && w > 0 && env.epoch == cur_epoch {
                    let n = *count;
                    *count += w;
                    fire = n <= *after_nth && *after_nth < n + w;
                }
            }
            if fire {
                // The victim dies just as it would handle this envelope:
                // its state (with its own checkpoint images) is discarded,
                // the envelope is lost with it, and the machine restarts
                // from the newest complete generation. Everything else in
                // the event queue is pre-failure traffic that the epoch
                // guard will discard on delivery.
                kill = None;
                let victim = pe;
                let failure = format!("injected failure of PE {victim}");
                if !launch.recovery_armed() {
                    return Err(RunError::RecoveryImpossible {
                        reason: "automatic checkpointing or the recovery entry is not armed".into(),
                        failure,
                    });
                }
                if recoveries >= launch.max_restarts {
                    return Err(RunError::RestartsExhausted {
                        attempts: recoveries,
                        last: failure,
                    });
                }
                let stores: Vec<Option<CkptStore>> = pes
                    .iter_mut()
                    .enumerate()
                    .map(|(i, p)| (i != victim).then(|| std::mem::take(&mut p.ckpt_store)))
                    .collect();
                let (generation, src) = match launch.recovery_source(&stores) {
                    Ok(x) => x,
                    Err(reason) => {
                        return Err(RunError::RecoveryImpossible { reason, failure });
                    }
                };
                recoveries += 1;
                cur_epoch += 1;
                cfg = (launch.mk_cfg)(cur_epoch, Some(src), generation + 1);
                let t_ns = t.as_nanos();
                let mut entry = launch.recovery_entry();
                pes = (0..npes)
                    .map(|p| {
                        let mut st =
                            launch.mk_pe(p, if p == 0 { entry.take() } else { None }, &cfg);
                        // The new incarnation continues on the same virtual
                        // timeline.
                        st.clock_ns = t_ns;
                        st
                    })
                    .collect();
                if pes[0].tracer.full() {
                    pes[0]
                        .tracer
                        .push(t_ns, charm_trace::EventKind::Recovery { epoch: cur_epoch });
                }
                let mut boot = Envelope::new(0, EnvKind::Bootstrap);
                boot.epoch = cur_epoch;
                events.push(t, (0, boot));
                continue;
            }
        }
        let state = &mut pes[pe];
        // An arrival past this PE's clock means the PE sat idle for the gap.
        let t_ns = t.as_nanos();
        if t_ns > state.clock_ns {
            state.tracer.idle(state.clock_ns, t_ns);
            state.clock_ns = t_ns;
        }
        state.handle(env);
        state.clock_ns += std::mem::take(&mut state.event_work_ns);
        let now = state.clock_ns;
        let exited = state.exited;
        ship_outbox(
            pe,
            now,
            &mut state.outbox,
            &model,
            &mut permuter,
            &mut events,
            #[cfg(feature = "analyze")]
            &mut inject_state,
            #[cfg(feature = "analyze")]
            &mut last_arrival,
        );
        if exited {
            clean_exit = true;
            break;
        }
    }

    // Send/deliver accounting must balance once the machine is quiescent:
    // a drained queue with sent ids never delivered means lost envelopes.
    // (After a recovery, the accounting covers the final incarnation —
    // stale-epoch envelopes are discarded before the detector sees them.)
    #[cfg(feature = "analyze")]
    crate::analyze::check_balance(
        pes.iter().map(|p| p.det_summary()).collect(),
        !clean_exit,
        pes[0].cfg.analyze_probe.as_ref(),
    );
    // The trace counters must agree with the detector: every QD-counted
    // send has a matching handle once the machine drains.
    #[cfg(feature = "analyze")]
    crate::analyze::check_counter_balance(
        &pes.iter().map(|p| p.counter_totals()).collect::<Vec<_>>(),
        !clean_exit,
        pes[0].cfg.analyze_probe.as_ref(),
    );

    if !clean_exit {
        eprintln!("charm-rs sim: event queue drained without exit() — stalled state:");
        for p in &pes {
            p.debug_dump();
        }
    }
    let makespan = pes.iter().map(|p| p.clock_ns).max().unwrap_or(0);
    let lb_epochs = pes[0].lb_epochs();
    let traces: Vec<PeTrace> = pes.iter_mut().map(|p| p.finish_trace()).collect();
    Ok(finish_report(
        launch.start.elapsed(),
        Duration::from_nanos(makespan),
        lb_epochs,
        recoveries,
        clean_exit,
        traces,
    ))
}

/// Default tracing level: cheap counters, or full event capture when the
/// crate is built with `--features trace`.
fn default_trace() -> TraceConfig {
    if cfg!(feature = "trace") {
        TraceConfig::full()
    } else {
        TraceConfig::counters()
    }
}
