//! Runtime configuration, the two execution backends and the run report.
//!
//! `charm.start(main)` in CharmPy becomes:
//!
//! ```no_run
//! use charm_core::prelude::*;
//! let report = Runtime::new(4).run(|co| {
//!     println!("hello from PE {}", co.ctx().my_pe());
//!     co.ctx().exit();
//! });
//! # let _ = report;
//! ```
//!
//! Two backends share every line of model semantics and differ only in how
//! PEs are driven:
//!
//! * [`Backend::Threads`] — one OS thread per PE, crossbeam channels as the
//!   interconnect. The "real" runtime for multicore hosts.
//! * [`Backend::Sim`] — all PEs multiplexed on a deterministic virtual-time
//!   event loop, with message delays from a [`MachineModel`]. This is the
//!   substitution for the paper's Blue Waters/Cori testbeds: handler
//!   execution is metered and charged to per-PE virtual clocks, so parallel
//!   performance (the figures) is read off virtual time.

use std::sync::Arc;
use std::time::{Duration, Instant};

use charm_sim::{EventQueue, MachineModel, VTime};
use charm_trace::{PePerf, PeTrace, TraceConfig, TraceReport};
use charm_wire::Codec;

use crate::chare::{Chare, MsgGuard, MsgGuards, Registry};
use crate::collections::{Placement, Placements};
use crate::coro::{install_quiet_shutdown_hook, run_coroutine, Co};
use crate::ctx::Ctx;
use crate::ids::Pe;
use crate::lb::LbStrategy;
use crate::msg::{EnvKind, Envelope};
use crate::pe::{PeState, SchedCfg};
use crate::reduction::{CustomReducers, RedData, Reducer};
use crate::tree::TreeShape;

/// How PEs execute.
#[derive(Clone)]
pub enum Backend {
    /// One OS thread per PE (real parallel execution).
    Threads,
    /// Deterministic virtual-time simulation under the given machine model.
    Sim(MachineModel),
}

/// How entry methods dispatch and serialize — the Charm++-vs-CharmPy axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Static dispatch, compact codec (the Charm++/C++ analog).
    Native,
    /// Self-describing pickle codec plus a modeled interpreter overhead
    /// per delivery (the CharmPy/Python analog).
    Dynamic,
}

/// The built-in chare hosting the `main` entry coroutine on PE 0.
pub struct Main;

impl Chare for Main {
    type Msg = ();
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Main {
        Main
    }
    fn receive(&mut self, _: (), _: &mut Ctx) {}
}

/// Aggregate results of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Host wall-clock duration of the run.
    pub wall: Duration,
    /// Application time: the virtual-time makespan (max PE clock) under the
    /// sim backend, wall time under threads.
    pub time: Duration,
    /// Application + runtime messages handled.
    pub msgs: u64,
    /// Cross-PE payload bytes moved.
    pub bytes: u64,
    /// Entry methods (incl. reduction deliveries) executed.
    pub entries: u64,
    /// Chare migrations performed.
    pub migrations: u64,
    /// Load-balancing epochs completed.
    pub lb_epochs: u64,
    /// Whether the run ended via `exit()` (vs. running out of messages).
    pub clean_exit: bool,
    /// Per-PE message counts, bytes moved, and (above `TraceLevel::Off`)
    /// the busy/idle/overhead decomposition. Always populated.
    pub pe_stats: Vec<PePerf>,
    /// Full trace (per-entry stats + event rings under full capture);
    /// `None` when tracing was configured off.
    pub trace: Option<TraceReport>,
}

/// Builder/launcher for a charm-rs application.
pub struct Runtime {
    npes: usize,
    backend: Backend,
    dispatch: DispatchMode,
    same_pe_byref: bool,
    meter: bool,
    compute_scale: f64,
    tree: TreeShape,
    lb: Option<Arc<dyn LbStrategy>>,
    idle_timeout: Duration,
    registry: Registry,
    reducers: CustomReducers,
    placements: Placements,
    restore_dir: Option<std::path::PathBuf>,
    msg_guards: MsgGuards,
    trace: TraceConfig,
    /// Sim backend: jitter message delivery order with this seed (FIFO
    /// per channel is preserved). Drives the schedule-permutation harness.
    permute: Option<u64>,
    /// Network fault injected by the sim driver (detector tests).
    #[cfg(feature = "analyze")]
    inject: Option<crate::analyze::InjectFault>,
    /// Findings sink shared with every PE's detector.
    #[cfg(feature = "analyze")]
    probe: Option<crate::analyze::FaultProbe>,
}

impl Runtime {
    /// A runtime with `npes` PEs on the threaded backend, native dispatch.
    pub fn new(npes: usize) -> Runtime {
        assert!(npes >= 1, "need at least one PE");
        Runtime {
            npes,
            backend: Backend::Threads,
            dispatch: DispatchMode::Native,
            same_pe_byref: true,
            meter: true,
            compute_scale: 1.0,
            tree: TreeShape::default(),
            lb: None,
            idle_timeout: Duration::from_secs(30),
            registry: Registry::default(),
            reducers: CustomReducers::default(),
            placements: Placements::default(),
            restore_dir: None,
            msg_guards: MsgGuards::default(),
            trace: default_trace(),
            permute: None,
            #[cfg(feature = "analyze")]
            inject: None,
            #[cfg(feature = "analyze")]
            probe: None,
        }
    }

    /// Sim backend: permute the delivery schedule with a deterministic
    /// seed. Per-channel FIFO order is preserved (as the network
    /// guarantees); everything else — cross-channel interleaving, the order
    /// concurrent messages reach one PE — is jittered. Running the same
    /// program under many seeds and diffing results is the
    /// schedule-permutation harness of DESIGN.md §6.
    pub fn permute_schedule(mut self, seed: u64) -> Self {
        self.permute = Some(seed);
        self
    }

    /// Install a findings probe: detector violations are collected instead
    /// of panicking. Returns the probe for inspection after `run`.
    #[cfg(feature = "analyze")]
    pub fn analyze_probe(mut self) -> (Self, crate::analyze::FaultProbe) {
        let probe = self
            .probe
            .get_or_insert_with(crate::analyze::FaultProbe::new)
            .clone();
        (self, probe)
    }

    /// Inject a network fault on the sim backend (tests): the detector must
    /// report it through the returned probe.
    #[cfg(feature = "analyze")]
    pub fn analyze_inject(
        mut self,
        fault: crate::analyze::InjectFault,
    ) -> (Self, crate::analyze::FaultProbe) {
        self.inject = Some(fault);
        self.analyze_probe()
    }

    /// Number of PEs this runtime will drive.
    pub fn npes(&self) -> usize {
        self.npes
    }

    /// The configured dispatch mode (and therefore the active wire codec).
    pub fn dispatch_mode(&self) -> DispatchMode {
        self.dispatch
    }

    /// Select the execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand for the simulated backend.
    pub fn simulated(self, model: MachineModel) -> Self {
        self.backend(Backend::Sim(model))
    }

    /// Select the dispatch/serialization mode.
    pub fn dispatch(mut self, mode: DispatchMode) -> Self {
        self.dispatch = mode;
        self
    }

    /// Toggle the same-PE by-reference optimization (paper §II-D) — the
    /// ablation switch; `true` by default.
    pub fn same_pe_byref(mut self, on: bool) -> Self {
        self.same_pe_byref = on;
        self
    }

    /// Sim backend: whether measured handler time is charged to the virtual
    /// clock (`true`, default) or only explicit `ctx.charge` calls count
    /// (`false`, for deterministic tests).
    pub fn meter_compute(mut self, on: bool) -> Self {
        self.meter = on;
        self
    }

    /// Sim backend: scale measured host time by this factor to model a
    /// slower/faster target core.
    pub fn compute_scale(mut self, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0);
        self.compute_scale = scale;
        self
    }

    /// Spanning-tree shape for broadcasts/reductions (§IV-D).
    pub fn tree(mut self, tree: TreeShape) -> Self {
        self.tree = tree;
        self
    }

    /// Install a load-balancing strategy (enables at-sync LB).
    pub fn lb_strategy(mut self, lb: Arc<dyn LbStrategy>) -> Self {
        self.lb = Some(lb);
        self
    }

    /// Threaded backend: how long a PE may sit idle before the run is
    /// declared hung (test safety net).
    pub fn idle_timeout(mut self, t: Duration) -> Self {
        self.idle_timeout = t;
        self
    }

    /// Configure tracing (Projections-style, DESIGN.md §7). The default is
    /// [`TraceConfig::counters`] — cheap always-on aggregates — or full
    /// event capture when built with `--features trace`.
    pub fn trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = cfg;
        self
    }

    /// Register a chare type (every type used must be registered).
    pub fn register<T: Chare>(mut self) -> Self {
        self.registry.register::<T>();
        self
    }

    /// Register a *migratable* chare type (state must be serde-able).
    pub fn register_migratable<T: Chare + serde::Serialize + serde::de::DeserializeOwned>(
        mut self,
    ) -> Self {
        self.registry.register_migratable::<T>();
        self
    }

    /// Register a custom reducer (CharmPy's `Reducer.addReducer`).
    pub fn add_reducer(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(Vec<RedData>) -> RedData + Send + Sync + 'static,
    ) -> Reducer {
        self.reducers.register(name, f)
    }

    /// Register a per-message when-condition for chare type `T` (the
    /// sender-side conditions of paper §II-E): messages sent with
    /// `Proxy::send_when(msg, guard)` are buffered at the receiver until
    /// `pred(chare, msg)` holds.
    pub fn add_msg_guard<T: Chare>(
        &mut self,
        pred: impl Fn(&T, &T::Msg) -> bool + Send + Sync + 'static,
    ) -> MsgGuard {
        self.msg_guards.register::<T>(pred)
    }

    /// Register a custom placement function (CharmPy's `ArrayMap`).
    pub fn add_placement(
        &mut self,
        f: impl Fn(&crate::ids::Index, usize) -> Pe + Send + Sync + 'static,
    ) -> Placement {
        self.placements.register(f)
    }

    /// Start the runtime from a checkpoint written by `Ctx::checkpoint`:
    /// collections and chares are restored (redistributed by placement if
    /// the PE count changed) before `entry` runs; `entry` re-kicks the
    /// application, e.g. by re-broadcasting its start message.
    pub fn run_restored(
        mut self,
        dir: impl Into<std::path::PathBuf>,
        entry: impl FnOnce(&mut Co<Main>) + Send + 'static,
    ) -> RunReport {
        self.restore_dir = Some(dir.into());
        self.run(entry)
    }

    /// Start the runtime: `entry` runs as an automatically-threaded main
    /// coroutine on PE 0 (paper §II-B). Returns when `exit()` is called (or,
    /// under sim, when no messages remain).
    pub fn run(mut self, entry: impl FnOnce(&mut Co<Main>) + Send + 'static) -> RunReport {
        install_quiet_shutdown_hook();
        self.registry.register::<Main>();
        let codec = match self.dispatch {
            DispatchMode::Native => Codec::Fast,
            DispatchMode::Dynamic => Codec::Pickle,
        };
        let (is_sim, sim_model) = match &self.backend {
            Backend::Threads => (false, None),
            Backend::Sim(m) => (true, Some(m.clone())),
        };
        let restore_dir = self.restore_dir.take();
        let cfg = Arc::new(SchedCfg {
            codec,
            dynamic: self.dispatch == DispatchMode::Dynamic,
            same_pe_byref: self.same_pe_byref,
            tree: self.tree,
            lb: self.lb.clone(),
            meter: self.meter,
            compute_scale: self.compute_scale,
            sim_model: sim_model.clone(),
            is_sim,
            restore_dir,
            msg_guards: Arc::new(self.msg_guards.clone()),
            trace: self.trace,
            #[cfg(feature = "analyze")]
            analyze_probe: self.probe.clone(),
        });
        let registry = Arc::new(std::mem::take(&mut self.registry));
        let placements = Arc::new(self.placements.clone());
        let reducers = Arc::new(self.reducers.clone());
        let entry_fn: crate::pe::CoroLauncher =
            Box::new(move |side| run_coroutine::<Main>(side, entry));

        let start = Instant::now();
        let mk_pe = |pe: Pe, entry: Option<crate::pe::CoroLauncher>| {
            PeState::new(
                pe,
                self.npes,
                Arc::clone(&cfg),
                Arc::clone(&registry),
                Arc::clone(&placements),
                Arc::clone(&reducers),
                start,
                entry,
            )
        };

        match self.backend {
            Backend::Threads => run_threads(self.npes, self.idle_timeout, mk_pe, entry_fn, start),
            Backend::Sim(model) => run_sim(
                self.npes,
                model,
                mk_pe,
                entry_fn,
                start,
                self.permute,
                #[cfg(feature = "analyze")]
                self.inject,
            ),
        }
    }
}

fn run_threads(
    npes: usize,
    idle_timeout: Duration,
    mk_pe: impl Fn(Pe, Option<crate::pe::CoroLauncher>) -> PeState,
    entry_fn: crate::pe::CoroLauncher,
    start: Instant,
) -> RunReport {
    use crossbeam::channel;

    let mut senders = Vec::with_capacity(npes);
    let mut receivers = Vec::with_capacity(npes);
    for _ in 0..npes {
        let (tx, rx) = channel::unbounded::<Envelope>();
        senders.push(tx);
        receivers.push(rx);
    }
    senders[0]
        .send(Envelope::new(0, EnvKind::Bootstrap))
        .expect("bootstrap send failed");

    let mut entry_slot = Some(entry_fn);
    let handles: Vec<_> = receivers
        .into_iter()
        .enumerate()
        .map(|(pe, rx)| {
            let mut state = mk_pe(pe, if pe == 0 { entry_slot.take() } else { None });
            let senders = senders.clone();
            std::thread::Builder::new()
                .name(format!("pe-{pe}"))
                .spawn(move || {
                    loop {
                        // Time spent waiting on the channel is the threaded
                        // backend's idle time.
                        let idle_from = if state.tracer.enabled() {
                            Some(state.now_ns())
                        } else {
                            None
                        };
                        let env = match rx.recv_timeout(idle_timeout) {
                            Ok(env) => env,
                            Err(channel::RecvTimeoutError::Timeout) => {
                                panic!("PE {pe} idle for {idle_timeout:?} — application hang?");
                            }
                            Err(channel::RecvTimeoutError::Disconnected) => break,
                        };
                        if let Some(t0) = idle_from {
                            let t1 = state.now_ns();
                            state.tracer.idle(t0, t1);
                        }
                        state.handle(env);
                        for (dst, env) in state.outbox.drain(..) {
                            // A send failing means the destination already
                            // exited — the message is moot.
                            let _ = senders[dst].send(env);
                        }
                        if state.exited {
                            break;
                        }
                    }
                    (state.finish_trace(), state.lb_epochs())
                })
                .expect("failed to spawn PE thread")
        })
        .collect();

    let mut traces = Vec::with_capacity(npes);
    let mut lb_epochs = 0;
    for h in handles {
        match h.join() {
            Ok((t, lb)) => {
                traces.push(t);
                lb_epochs += lb;
            }
            Err(p) => std::panic::resume_unwind(p),
        }
    }
    let wall = start.elapsed();
    finish_report(wall, wall, lb_epochs, true, traces)
}

/// Fold the per-PE traces into the run report (shared by both backends).
fn finish_report(
    wall: Duration,
    time: Duration,
    lb_epochs: u64,
    clean_exit: bool,
    pes: Vec<PeTrace>,
) -> RunReport {
    let mut msgs = 0;
    let mut bytes = 0;
    let mut entries = 0;
    let mut migrations = 0;
    for t in &pes {
        msgs += t.perf.msgs_processed;
        bytes += t.perf.bytes_sent_remote;
        entries += t.perf.entries;
        migrations += t.perf.migrations;
    }
    let enabled = pes.iter().any(|t| t.enabled);
    let pe_stats = pes.iter().map(|t| t.perf.clone()).collect();
    RunReport {
        wall,
        time,
        msgs,
        bytes,
        entries,
        migrations,
        lb_epochs,
        clean_exit,
        pe_stats,
        trace: enabled.then(|| TraceReport { pes }),
    }
}

fn run_sim(
    npes: usize,
    model: MachineModel,
    mk_pe: impl Fn(Pe, Option<crate::pe::CoroLauncher>) -> PeState,
    entry_fn: crate::pe::CoroLauncher,
    start: Instant,
    permute: Option<u64>,
    #[cfg(feature = "analyze")] inject: Option<crate::analyze::InjectFault>,
) -> RunReport {
    let mut entry_slot = Some(entry_fn);
    let mut pes: Vec<PeState> = (0..npes)
        .map(|pe| mk_pe(pe, if pe == 0 { entry_slot.take() } else { None }))
        .collect();
    let mut events: EventQueue<(Pe, Envelope)> = EventQueue::new();
    events.push(VTime::ZERO, (0, Envelope::new(0, EnvKind::Bootstrap)));

    // Schedule permutation: deterministic per-seed jitter on delivery
    // times, preserving per-channel FIFO (the ordering real networks and
    // the threads backend guarantee).
    let mut permuter = permute.map(charm_sim::PermuteSchedule::new);
    // Per-channel arrival clamp: the baseline delay model is size-dependent
    // and may reorder one channel's messages; under the detector we pin
    // channels FIFO so an ordering violation is a runtime bug, not a model
    // artifact.
    #[cfg(feature = "analyze")]
    let mut last_arrival: std::collections::HashMap<(Pe, Pe), u64> =
        std::collections::HashMap::new();
    // Fault injection: (fault, count of QD-counted envelopes shipped).
    #[cfg(feature = "analyze")]
    let mut inject_state = inject.map(|f| (f, 0u64));

    let mut clean_exit = false;
    while let Some((t, (pe, env))) = events.pop() {
        let state = &mut pes[pe];
        // An arrival past this PE's clock means the PE sat idle for the gap.
        let t_ns = t.as_nanos();
        if t_ns > state.clock_ns {
            state.tracer.idle(state.clock_ns, t_ns);
            state.clock_ns = t_ns;
        }
        state.handle(env);
        state.clock_ns += std::mem::take(&mut state.event_work_ns);
        let now = state.clock_ns;
        let outbox: Vec<(Pe, Envelope)> = state.outbox.drain(..).collect();
        let exited = state.exited;
        for (dst, env) in outbox {
            #[cfg(feature = "analyze")]
            let mut duplicate: Option<Envelope> = None;
            #[cfg(feature = "analyze")]
            if let Some((fault, count)) = &mut inject_state {
                if env.kind.counts_for_qd() {
                    let n = *count;
                    *count += 1;
                    match *fault {
                        crate::analyze::InjectFault::DropNth(k) if k == n => continue,
                        crate::analyze::InjectFault::DuplicateNth(k) if k == n => {
                            duplicate = env.try_clone();
                        }
                        _ => {}
                    }
                }
            }
            let delay = model.msg_delay(pe, dst, env.kind.size_hint());
            let mut at = VTime::from_nanos(now) + delay;
            if let Some(p) = &mut permuter {
                at = p.delivery_time(pe, dst, at);
            }
            #[cfg(feature = "analyze")]
            {
                let last = last_arrival.entry((pe, dst)).or_insert(0);
                if at.as_nanos() <= *last {
                    at = VTime::from_nanos(*last + 1);
                }
                *last = at.as_nanos();
            }
            events.push(at, (dst, env));
            #[cfg(feature = "analyze")]
            if let Some(dup) = duplicate {
                // The duplicate trails the original on the same channel,
                // like a network-level retransmission.
                let at2 = VTime::from_nanos(at.as_nanos() + 1);
                last_arrival.insert((pe, dst), at2.as_nanos());
                events.push(at2, (dst, dup));
            }
        }
        if exited {
            clean_exit = true;
            break;
        }
    }

    // Send/deliver accounting must balance once the machine is quiescent:
    // a drained queue with sent ids never delivered means lost envelopes.
    #[cfg(feature = "analyze")]
    crate::analyze::check_balance(
        pes.iter().map(|p| p.det_summary()).collect(),
        !clean_exit,
        pes[0].cfg.analyze_probe.as_ref(),
    );
    // The trace counters must agree with the detector: every QD-counted
    // send has a matching handle once the machine drains.
    #[cfg(feature = "analyze")]
    crate::analyze::check_counter_balance(
        &pes.iter().map(|p| p.counter_totals()).collect::<Vec<_>>(),
        !clean_exit,
        pes[0].cfg.analyze_probe.as_ref(),
    );

    if !clean_exit {
        eprintln!("charm-rs sim: event queue drained without exit() — stalled state:");
        for p in &pes {
            p.debug_dump();
        }
    }
    let makespan = pes.iter().map(|p| p.clock_ns).max().unwrap_or(0);
    let lb_epochs = pes[0].lb_epochs();
    let traces: Vec<PeTrace> = pes.iter_mut().map(|p| p.finish_trace()).collect();
    finish_report(
        start.elapsed(),
        Duration::from_nanos(makespan),
        lb_epochs,
        clean_exit,
        traces,
    )
}

/// Default tracing level: cheap counters, or full event capture when the
/// crate is built with `--features trace`.
fn default_trace() -> TraceConfig {
    if cfg!(feature = "trace") {
        TraceConfig::full()
    } else {
        TraceConfig::counters()
    }
}
