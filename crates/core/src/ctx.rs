//! `Ctx` — the runtime handle available inside entry methods, constructors
//! and coroutines (the analog of CharmPy's `charm` object plus the chare's
//! `self.*` runtime methods).
//!
//! All side effects are *deferred*: proxy sends, creations, contributions
//! and control actions are buffered as deferred ops and executed by the
//! scheduler when the handler returns (or when a coroutine yields). This
//! matches the asynchronous model — nothing in an entry method can block —
//! and gives the simulated backend a single point at which to timestamp
//! outgoing traffic.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use charm_wire::{Codec, WireBytes};

use crate::chare::Chare;
use crate::collections::{CollKind, CollSpec, Placement};
use crate::coro::{run_coroutine, Co, CoroSide};
use crate::future::Future;
use crate::ids::{ChareId, CollectionId, FutureId, Index, Pe};
use crate::msg::{Message, OutPayload};
use crate::proxy::Proxy;
use crate::reduction::{RedData, RedTarget, Reducer};

/// Shared per-PE allocation state usable from both the scheduler and
/// coroutine threads.
#[derive(Clone)]
pub(crate) struct CtxSeed {
    pub pe: Pe,
    pub npes: usize,
    pub codec: Codec,
    /// Machine incarnation (0 until a recovery has happened).
    pub epoch: u64,
    pub fut_seq: Arc<AtomicU64>,
    pub coll_seq: Arc<AtomicU32>,
    pub registry: Arc<crate::chare::Registry>,
}

/// Options for array creation.
#[derive(Debug, Clone, Copy)]
pub struct ArrayOpts {
    /// Element→PE mapping.
    pub placement: Placement,
    /// Whether members take part in at-sync load balancing.
    pub use_lb: bool,
}

impl Default for ArrayOpts {
    fn default() -> Self {
        ArrayOpts {
            placement: Placement::Block,
            use_lb: false,
        }
    }
}

/// Deferred runtime actions produced by a handler.
pub(crate) enum Op {
    SendElem {
        to: ChareId,
        payload: OutPayload,
        reply: Option<FutureId>,
        guard: Option<u32>,
    },
    Broadcast {
        coll: CollectionId,
        bytes: WireBytes,
    },
    Multicast {
        coll: CollectionId,
        members: Vec<Index>,
        bytes: WireBytes,
    },
    CreateCollection {
        spec: CollSpec,
        init_bytes: WireBytes,
    },
    InsertElem {
        coll: CollectionId,
        index: Index,
        init: OutPayload,
        on_pe: Option<Pe>,
    },
    DoneInserting {
        coll: CollectionId,
    },
    SendFuture {
        fid: FutureId,
        payload: OutPayload,
    },
    Contribute {
        data: RedData,
        reducer: Reducer,
        target: RedTarget,
    },
    MigrateMe {
        to: Pe,
    },
    AtSync,
    Go(Box<dyn FnOnce(CoroSide) + Send + 'static>),
    Charge(Duration),
    StartQd {
        fid: FutureId,
    },
    Checkpoint {
        dir: String,
        fid: FutureId,
    },
    Exit,
    TraceMark(String),
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Op::SendElem { .. } => "SendElem",
            Op::Broadcast { .. } => "Broadcast",
            Op::Multicast { .. } => "Multicast",
            Op::CreateCollection { .. } => "CreateCollection",
            Op::InsertElem { .. } => "InsertElem",
            Op::DoneInserting { .. } => "DoneInserting",
            Op::SendFuture { .. } => "SendFuture",
            Op::Contribute { .. } => "Contribute",
            Op::MigrateMe { .. } => "MigrateMe",
            Op::AtSync => "AtSync",
            Op::Go(_) => "Go",
            Op::Charge(_) => "Charge",
            Op::StartQd { .. } => "StartQd",
            Op::Checkpoint { .. } => "Checkpoint",
            Op::Exit => "Exit",
            Op::TraceMark(_) => "TraceMark",
        };
        write!(f, "Op::{name}")
    }
}

/// The runtime context handed to every entry method.
pub struct Ctx {
    pub(crate) seed: CtxSeed,
    pub(crate) now_ns: u64,
    pub(crate) this: Option<ChareId>,
    pub(crate) reply_to: Option<FutureId>,
    pub(crate) ops: Vec<Op>,
}

impl Ctx {
    pub(crate) fn new(seed: CtxSeed, now_ns: u64, this: Option<ChareId>) -> Ctx {
        Ctx {
            seed,
            now_ns,
            this,
            reply_to: None,
            ops: Vec::new(),
        }
    }

    /// The PE this handler is executing on (`charm.myPe()`).
    pub fn my_pe(&self) -> Pe {
        self.seed.pe
    }

    /// Total number of PEs (`charm.numPes()`).
    pub fn num_pes(&self) -> usize {
        self.seed.npes
    }

    /// Current time in seconds — virtual time under the simulated backend,
    /// elapsed wall time under the threaded one.
    pub fn now(&self) -> f64 {
        self.now_ns as f64 / 1e9
    }

    /// Identity of the chare this handler runs on (`None` at top level).
    pub fn this_id(&self) -> Option<ChareId> {
        self.this
    }

    /// The machine's recovery epoch: 0 in a fault-free run, incremented by
    /// the supervisor on every automatic restart. Lets recovery entry
    /// closures distinguish the first incarnation from a re-run.
    pub fn recovery_epoch(&self) -> u64 {
        self.seed.epoch
    }

    /// Index of the current chare within its collection (`thisIndex`).
    pub fn my_index(&self) -> Index {
        // analyze: allow(panic, "API contract: my_index is only callable from inside an entry method, as in CharmPy; elsewhere is user error")
        self.this.expect("my_index outside a chare").index
    }

    /// Proxy to the current chare's whole collection (`thisProxy`).
    pub fn this_proxy<T: Chare>(&self) -> Proxy<T> {
        // analyze: allow(panic, "API contract: this_proxy requires an active chare context; user error otherwise")
        Proxy::collection(self.this.expect("this_proxy outside a chare").coll)
    }

    /// Proxy to the current chare itself.
    pub fn this_elem<T: Chare>(&self) -> Proxy<T> {
        // analyze: allow(panic, "API contract: this_elem requires an active chare context; user error otherwise")
        let id = self.this.expect("this_elem outside a chare");
        Proxy::element(id.coll, id.index)
    }

    // ----- futures --------------------------------------------------------

    /// Create a new future on this PE (`charm.createFuture()`).
    pub fn create_future<V: Message>(&mut self) -> Future<V> {
        let seq = self.seed.fut_seq.fetch_add(1, Ordering::Relaxed);
        Future::new(FutureId {
            pe: self.seed.pe as u32,
            seq,
        })
    }

    /// Complete `future` with `value` (the value travels to the creating
    /// PE; any coroutine blocked on `get` resumes there).
    pub fn send_future<V: Message>(&mut self, future: &Future<V>, value: V) {
        self.ops.push(Op::SendFuture {
            fid: future.id,
            payload: OutPayload::new(value),
        });
    }

    /// Reply to the caller of this entry method, if it asked for a return
    /// value via `Proxy::call` (`ret=True`). Silently dropped otherwise,
    /// matching CharmPy's discard of unrequested return values.
    pub fn reply<V: Message>(&mut self, value: V) {
        if let Some(fid) = self.reply_to {
            self.ops.push(Op::SendFuture {
                fid,
                payload: OutPayload::new(value),
            });
        }
    }

    /// Whether the current invocation carries a reply future.
    pub fn has_reply(&self) -> bool {
        self.reply_to.is_some()
    }

    /// The raw reply future id, if any (to forward it elsewhere).
    pub fn reply_future(&self) -> Option<FutureId> {
        self.reply_to
    }

    // ----- chare/collection creation -------------------------------------

    fn alloc_coll(&mut self) -> CollectionId {
        CollectionId {
            creator: self.seed.pe as u32,
            seq: self.seed.coll_seq.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Create a single chare (`Chare(Type, onPE=..)`). With `on_pe: None`
    /// the runtime picks a PE (round-robin by creation sequence).
    pub fn create_chare<T: Chare>(&mut self, init: T::Init, on_pe: Option<Pe>) -> Proxy<T> {
        let id = self.alloc_coll();
        let pe = on_pe.unwrap_or((id.seq as usize) % self.seed.npes);
        assert!(pe < self.seed.npes, "create_chare: PE {pe} out of range");
        let spec = CollSpec {
            id,
            ctype: crate::ids::ChareTypeId(u32::MAX), // resolved by scheduler
            kind: CollKind::Singleton { pe },
            placement: Placement::Hash,
            use_lb: false,
        };
        self.push_create::<T>(spec, init);
        Proxy::element(id, Index::SINGLE)
    }

    /// Create a group: one member per PE (`Group(Type)`).
    pub fn create_group<T: Chare>(&mut self, init: T::Init) -> Proxy<T> {
        let id = self.alloc_coll();
        let spec = CollSpec {
            id,
            ctype: crate::ids::ChareTypeId(u32::MAX),
            kind: CollKind::Group,
            placement: Placement::Hash,
            use_lb: false,
        };
        self.push_create::<T>(spec, init);
        Proxy::collection(id)
    }

    /// Create a dense N-D chare array with default options
    /// (`Array(Type, dims)`).
    pub fn create_array<T: Chare>(&mut self, dims: &[i32], init: T::Init) -> Proxy<T> {
        self.create_array_with::<T>(dims, init, ArrayOpts::default())
    }

    /// Create a dense N-D chare array with explicit placement / LB options.
    pub fn create_array_with<T: Chare>(
        &mut self,
        dims: &[i32],
        init: T::Init,
        opts: ArrayOpts,
    ) -> Proxy<T> {
        assert!(!dims.is_empty(), "array needs at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "array dims must be positive");
        let id = self.alloc_coll();
        let spec = CollSpec {
            id,
            ctype: crate::ids::ChareTypeId(u32::MAX),
            kind: CollKind::Dense {
                // analyze: allow(payload-copy, "copies a short user-supplied dims slice into collection metadata, not a wire payload")
                dims: dims.to_vec(),
            },
            placement: opts.placement,
            use_lb: opts.use_lb,
        };
        self.push_create::<T>(spec, init);
        Proxy::collection(id)
    }

    /// Create an empty sparse array (`Array(Type, ndims=n)`); elements are
    /// inserted later with [`Proxy::insert`].
    pub fn create_sparse<T: Chare>(&mut self, opts: ArrayOpts) -> Proxy<T> {
        let id = self.alloc_coll();
        let spec = CollSpec {
            id,
            ctype: crate::ids::ChareTypeId(u32::MAX),
            kind: CollKind::Sparse,
            placement: opts.placement,
            use_lb: opts.use_lb,
        };
        // Sparse arrays have no members at creation; the init payload is
        // unused but the spec still replicates to every PE.
        self.push_create_raw::<T>(spec, WireBytes::new());
        Proxy::collection(id)
    }

    fn push_create<T: Chare>(&mut self, spec: CollSpec, init: T::Init) {
        let bytes = self
            .seed
            .codec
            .encode_shared(&init)
            // analyze: allow(panic, "encoding a just-built constructor argument fails only on a codec bug; no recovery is possible")
            .expect("constructor argument failed to encode");
        self.push_create_raw::<T>(spec, bytes);
    }

    fn push_create_raw<T: Chare>(&mut self, mut spec: CollSpec, init_bytes: WireBytes) {
        spec.ctype = self.seed.registry.type_of::<T>();
        self.ops.push(Op::CreateCollection { spec, init_bytes });
    }

    // ----- reductions -----------------------------------------------------

    /// Contribute to a reduction over this chare's collection
    /// (`self.contribute(data, reducer, target)`).
    pub fn contribute(&mut self, data: RedData, reducer: Reducer, target: RedTarget) {
        assert!(
            self.this.is_some(),
            "contribute must be called from a chare"
        );
        self.ops.push(Op::Contribute {
            data,
            reducer,
            target,
        });
    }

    /// Contribute a typed value to a gather reduction; the target receives
    /// all values sorted by member index.
    pub fn contribute_gather<V: Message>(&mut self, value: &V, target: RedTarget) {
        let bytes = self
            .seed
            .codec
            .encode(value)
            // analyze: allow(panic, "encoding the user's gather contribution fails only on a codec bug")
            .expect("gather contribution failed to encode");
        let index = self.my_index();
        self.contribute(
            RedData::Gather(vec![(index, bytes)]),
            Reducer::Gather,
            target,
        );
    }

    /// Empty reduction: a pure completion barrier (paper §II-F).
    pub fn contribute_barrier(&mut self, target: RedTarget) {
        self.contribute(RedData::Unit, Reducer::Nop, target);
    }

    // ----- migration / LB / control ---------------------------------------

    /// Move this chare to `pe` after the current entry method finishes
    /// (`self.migrate(toPe)`). The type must be registered migratable.
    pub fn migrate_me(&mut self, pe: Pe) {
        assert!(pe < self.seed.npes, "migrate_me: PE {pe} out of range");
        self.ops.push(Op::MigrateMe { to: pe });
    }

    /// Signal that this chare is ready for load balancing (`AtSync`). The
    /// runtime calls `resume_from_sync` when the epoch completes.
    pub fn at_sync(&mut self) {
        assert!(self.this.is_some(), "at_sync must be called from a chare");
        self.ops.push(Op::AtSync);
    }

    /// Launch a threaded entry method on the current chare: `body` runs on
    /// its own coroutine and may suspend via [`Co::wait`]/[`Co::get`] while
    /// the PE keeps delivering other messages (paper §II-H1).
    pub fn go<T: Chare>(&mut self, body: impl FnOnce(&mut Co<T>) + Send + 'static) {
        assert!(self.this.is_some(), "go must be called from a chare");
        self.ops.push(Op::Go(Box::new(move |side: CoroSide| {
            run_coroutine::<T>(side, body)
        })));
    }

    /// Charge `dt` of compute time to this PE. Under the simulated backend
    /// this advances the virtual clock (and the chare's measured load)
    /// without burning host CPU — the analog of the paper's synthetic-load
    /// `sleep(t_k * alpha_i)`. Under the threaded backend it really sleeps.
    pub fn charge(&mut self, dt: Duration) {
        self.ops.push(Op::Charge(dt));
    }

    /// Ask for quiescence detection: `fid` completes (with `()`) once no
    /// application messages are in flight or being processed anywhere.
    pub fn start_quiescence(&mut self, future: &Future<()>) {
        self.ops.push(Op::StartQd { fid: future.id() });
    }

    /// Write a global checkpoint into `dir`: every PE serializes its local
    /// chares and collection metadata; `done` completes with the total
    /// chare count saved. Take checkpoints at an application sync point
    /// with no messages in flight and no suspended coroutines (use
    /// [`Ctx::start_quiescence`] to be sure); all chare types must be
    /// registered migratable. Restore with `Runtime::run_restored`.
    pub fn checkpoint(&mut self, dir: impl Into<String>, done: &Future<i64>) {
        self.ops.push(Op::Checkpoint {
            dir: dir.into(),
            fid: done.id(),
        });
    }

    /// Stop the runtime (`charm.exit()`).
    pub fn exit(&mut self) {
        self.ops.push(Op::Exit);
    }

    /// Drop a labelled instant into this PE's trace (visible in the
    /// Chrome/Perfetto timeline; a no-op below full capture).
    pub fn trace_mark(&mut self, label: impl Into<String>) {
        self.ops.push(Op::TraceMark(label.into()));
    }
}
