//! The Net backend driver: one PE per OS process over `charm-net`
//! (DESIGN.md §13).
//!
//! The process whose environment carries no `CHARMRS_NET_*` variables is
//! the **root**: it runs PE 0's scheduler *and* the restart supervisor —
//! the same supervisor loop as the threads backend, except that a failed
//! incarnation is detected through the transport (peer loss, child-process
//! death) instead of a joined thread, and a restart *respawns a process*
//! and re-rendezvouses instead of re-spawning threads. **Workers** run one
//! scheduler each and obey the root's `Restart` notices: tear down the
//! incarnation, rebuild at the announced epoch, keep serving.
//!
//! The scheduler itself is unchanged — the same `PeState`, the same
//! epoch-stamped envelopes, the same stale-epoch discard rule. This driver
//! only moves envelopes: local ones loop through an in-process queue,
//! remote ones cross the socket via the [`crate::netmsg`] mirror.
//!
//! Documented v1 limits (see DESIGN.md §13.5): the root process itself is
//! not recoverable, recovery requires [`Store::Disk`] on a filesystem all
//! processes share, and telemetry sweeps are rejected at configuration
//! time.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use charm_net::{Launcher, NetCfg, NetEvent, NetNode, WorkerEnv};
use charm_trace::PeTrace;

use crate::checkpoint::Store;
use crate::ids::Pe;
use crate::msg::{EnvKind, Envelope};
use crate::netmsg::{decode_env, encode_env, WirePerf};
use crate::pe::PeState;
use crate::runtime::{finish_report, panic_msg, Launch, RunError, RunReport};

/// Read the wall clock (single sanctioned call site for this module).
fn now() -> Instant {
    // analyze: allow(net-hook, "Net driver deadlines are wall-clock by design, like the threads supervisor's; the sim/check drivers never run this module")
    Instant::now()
}

fn boot_err(e: charm_net::NetError) -> RunError {
    RunError::Bootstrap(e.to_string())
}

/// How one incarnation's drive loop ended.
enum DriveEnd {
    /// The application exited cleanly.
    Exited,
    /// No local or remote progress within the idle timeout.
    Hung(Duration),
    /// Root only: a worker is gone (transport verdict or child death).
    PeerFailed {
        pe: Pe,
        incarnation: u64,
        reason: String,
    },
    /// Worker only: the root announced a recovery restart.
    Restart { epoch: u64, generation: u64 },
    /// Worker only: the connection to the root is gone for good.
    RootLost { incarnation: u64 },
}

/// Envelope-level drop counters (distinct from the transport's frame
/// counters): mirror-unrepresentable outbound envelopes and undecodable
/// inbound ones. Both are defects worth surfacing, not panics.
#[derive(Default)]
struct DropCounts {
    encode: u64,
    decode: u64,
}

/// Drive one incarnation of the local scheduler against the mesh.
/// `launcher` doubles as the role discriminator: `Some` is the root
/// (supervises children, collects worker stats into `stats`), `None` is a
/// worker (obeys `Restart`, fails on root loss).
#[allow(clippy::too_many_arguments)]
fn drive(
    state: &mut PeState,
    me: Pe,
    node: &NetNode,
    mut launcher: Option<&mut Launcher>,
    local: &mut VecDeque<Envelope>,
    idle_timeout: Duration,
    stats: &mut [Option<WirePerf>],
    drops: &mut DropCounts,
    #[cfg(feature = "analyze")] kill: Option<(Pe, u64)>,
) -> DriveEnd {
    let codec = state.cfg.codec;
    let mut last_progress = now();
    // Children that exited without a clean goodbye get a short grace
    // window for the goodbye frame to arrive before they are declared
    // failed (reaping the process can race the last bytes in flight).
    let mut suspects: Vec<(Pe, Instant)> = Vec::new();
    #[cfg(feature = "analyze")]
    let mut qd_handled = 0u64;
    loop {
        let env = if let Some(env) = local.pop_front() {
            env
        } else {
            match node.events().recv_timeout(Duration::from_millis(10)) {
                Ok(NetEvent::Payload { src: _, bytes }) => match decode_env(codec, &bytes) {
                    Ok(env) => env,
                    Err(_) => {
                        drops.decode += 1;
                        continue;
                    }
                },
                Ok(NetEvent::PeerUp { .. }) => continue,
                Ok(NetEvent::Restart { epoch, generation }) => {
                    if launcher.is_none() {
                        return DriveEnd::Restart { epoch, generation };
                    }
                    continue;
                }
                Ok(NetEvent::PeerLost {
                    pe,
                    incarnation,
                    reason,
                }) => {
                    // A repaired peer (reconnect won the race against the
                    // verdict) makes the loss moot.
                    if node.peer_live(pe) {
                        continue;
                    }
                    if launcher.is_some() {
                        return DriveEnd::PeerFailed {
                            pe,
                            incarnation,
                            reason,
                        };
                    }
                    if pe == 0 {
                        return DriveEnd::RootLost { incarnation };
                    }
                    // Worker view of a sibling loss: the root supervises;
                    // either a Restart or an Exit will follow.
                    continue;
                }
                Ok(NetEvent::Stats { pe, bytes }) => {
                    if let Some(slot) = stats.get_mut(pe) {
                        *slot = codec.decode::<WirePerf>(&bytes).ok();
                    }
                    continue;
                }
                Err(_) => {
                    // Idle tick: flush parked aggregation buffers (nobody
                    // else will move traffic we sit on), then supervise.
                    if state.flush_aggregation() {
                        ship(state, me, node, local, drops);
                        last_progress = now();
                        continue;
                    }
                    if let Some(l) = launcher.as_deref_mut() {
                        for pe in l.poll_exited() {
                            suspects.push((pe, now() + Duration::from_millis(250)));
                        }
                    }
                    let mut failed = None;
                    suspects.retain(|&(pe, deadline)| {
                        if node.peer_bye(pe) {
                            // The child said goodbye before exiting: a clean
                            // worker shutdown, not a failure.
                            return false;
                        }
                        if now() >= deadline && failed.is_none() {
                            failed = Some(pe);
                            return false;
                        }
                        true
                    });
                    if let Some(pe) = failed {
                        return DriveEnd::PeerFailed {
                            pe,
                            incarnation: node.epoch(),
                            reason: format!("worker process for PE {pe} exited"),
                        };
                    }
                    if now().duration_since(last_progress) >= idle_timeout {
                        return DriveEnd::Hung(idle_timeout);
                    }
                    continue;
                }
            }
        };
        #[cfg(feature = "analyze")]
        if let Some((victim, after_nth)) = kill {
            // Same delivery clock as the threads backend's injector — but
            // here the victim kills its *process*, so the failure the root
            // recovers from is a real SIGKILL, not a caught panic.
            let w = env.kind.qd_weight();
            if victim == me && w > 0 && env.epoch == 0 {
                let n = qd_handled;
                qd_handled += w;
                if n <= after_nth && after_nth < n + w {
                    charm_net::kill_self_hard();
                }
            }
        }
        state.handle(env);
        ship(state, me, node, local, drops);
        last_progress = now();
        if state.exited {
            return DriveEnd::Exited;
        }
    }
}

/// Move the scheduler's outbox: same-PE envelopes loop through the local
/// queue; remote ones are serialized onto the mesh. Send failures are the
/// transport's problem (its loss path reports them) — the driver only
/// counts envelopes that could not even be represented.
fn ship(
    state: &mut PeState,
    me: Pe,
    node: &NetNode,
    local: &mut VecDeque<Envelope>,
    drops: &mut DropCounts,
) {
    for (dst, env) in state.outbox.drain(..) {
        if dst == me {
            local.push_back(env);
            continue;
        }
        match encode_env(state.cfg.codec, env) {
            Ok(bytes) => {
                let _ = node.send_payload(dst, &bytes);
            }
            Err(_) => drops.encode += 1,
        }
    }
}

/// Entry point from [`crate::runtime`]: dispatch on the process's role.
pub(crate) fn run_net(
    launch: Launch,
    netcfg: NetCfg,
    idle_timeout: Duration,
    entry_fn: crate::pe::CoroLauncher,
    #[cfg(feature = "analyze")] inject: Option<crate::analyze::InjectFault>,
) -> Result<RunReport, RunError> {
    match charm_net::worker_env() {
        None => run_root(
            launch,
            netcfg,
            idle_timeout,
            entry_fn,
            #[cfg(feature = "analyze")]
            inject,
        ),
        // Worker processes never return to application code: like
        // `charm.start` on a non-0 PE, the call serves the run and then
        // ends the process (the code after `Runtime::run` is root-only).
        Some(Ok(we)) => run_worker(
            launch,
            netcfg,
            idle_timeout,
            we,
            #[cfg(feature = "analyze")]
            inject,
        ),
        Some(Err(e)) => Err(boot_err(e)),
    }
}

fn run_root(
    mut launch: Launch,
    netcfg: NetCfg,
    idle_timeout: Duration,
    entry_fn: crate::pe::CoroLauncher,
    #[cfg(feature = "analyze")] _inject: Option<crate::analyze::InjectFault>,
) -> Result<RunReport, RunError> {
    let npes = launch.npes;
    // The nonce only has to differ between overlapping runs on one host.
    // analyze: allow(nondeterminism, "run-identity nonce: wall clock + pid is exactly the entropy wanted here")
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos() as u64
        ^ (u64::from(std::process::id()) << 32);
    let node = NetNode::root(&netcfg, npes, nonce).map_err(boot_err)?;
    let mut launcher = Launcher::spawn_all(
        &netcfg,
        npes,
        node.listen_addr(),
        nonce,
        launch.ckpt_seq_start,
    )
    .map_err(boot_err)?;
    node.await_workers().map_err(boot_err)?;

    let mut entry_slot = Some(entry_fn);
    let mut restore = launch.restore.take();
    let mut seq_start = launch.ckpt_seq_start;
    let mut recoveries = 0u64;
    let mut stats: Vec<Option<WirePerf>> = (0..npes).map(|_| None).collect();
    let mut drops = DropCounts::default();
    // Envelopes that outlive an incarnation (unprocessed locals, frames
    // arriving during the readmission wait) are re-presented to the next
    // incarnation's scheduler: current-epoch ones deliver, stale ones are
    // discarded *and counted* by the scheduler's epoch guard.
    let mut local = VecDeque::new();

    for epoch in 0u64.. {
        node.set_epoch(epoch);
        let cfg = (launch.mk_cfg)(epoch, restore.take(), seq_start);
        let entry = match entry_slot.take() {
            Some(e) => Some(e),
            None => launch.recovery_entry(),
        };
        let mut state = launch.mk_pe(0, entry, &cfg);
        if epoch > 0 && state.tracer.full() {
            let t = state.now_ns();
            state
                .tracer
                .push(t, charm_trace::EventKind::Recovery { epoch });
        }
        let mut boot = Envelope::new(0, EnvKind::Bootstrap);
        boot.epoch = epoch;
        local.push_front(boot);

        // PE 0's handlers run application code; a panic there is a root
        // failure, and the root hosts the supervisor — v1 does not survive
        // it (§13.5). Caught so the report is typed, not a crash.
        let end = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            drive(
                &mut state,
                0,
                &node,
                Some(&mut launcher),
                &mut local,
                idle_timeout,
                &mut stats,
                &mut drops,
                #[cfg(feature = "analyze")]
                None,
            )
        }));
        let end = match end {
            Ok(end) => end,
            Err(p) => {
                node.kill();
                return Err(RunError::PePanic {
                    pe: 0,
                    msg: panic_msg(p),
                });
            }
        };
        match end {
            DriveEnd::Exited => {
                // Workers ship their stats right after their own Exit;
                // give the frames the drain window to arrive.
                let deadline = now() + netcfg.drain_timeout;
                while stats[1..].iter().any(Option::is_none) && now() < deadline {
                    if let Ok(NetEvent::Stats { pe, bytes }) =
                        node.events().recv_timeout(Duration::from_millis(10))
                    {
                        if let Some(slot) = stats.get_mut(pe) {
                            *slot = state.cfg.codec.decode::<WirePerf>(&bytes).ok();
                        }
                    }
                }
                node.drain(netcfg.drain_timeout)
                    .map_err(|e| RunError::Drain(e.to_string()))?;
                let trace0 = state.finish_trace();
                let mut lb_total = state.lb_epochs();
                let mut traces = vec![trace0];
                let mut missing = Vec::new();
                for (pe, slot) in stats.iter_mut().enumerate().skip(1) {
                    match slot.take() {
                        Some(w) => {
                            let (perf, lb) = w.into_perf();
                            lb_total += lb;
                            traces.push(PeTrace {
                                perf,
                                ..PeTrace::default()
                            });
                        }
                        None => missing.push(pe),
                    }
                }
                if !missing.is_empty() {
                    return Err(RunError::Drain(format!(
                        "no final statistics from worker PE(s) {missing:?} within {:?}",
                        netcfg.drain_timeout
                    )));
                }
                let wall = launch.start.elapsed();
                return Ok(finish_report(
                    wall, wall, lb_total, recoveries, true, traces,
                ));
            }
            DriveEnd::Hung(idle) => {
                node.kill();
                return Err(RunError::Hang { pe: 0, idle });
            }
            DriveEnd::PeerFailed {
                pe,
                incarnation,
                reason,
            } => {
                if !launch.recovery_armed() {
                    node.kill();
                    return Err(RunError::PeerLost { pe, incarnation });
                }
                if recoveries >= launch.max_restarts {
                    node.kill();
                    return Err(RunError::RestartsExhausted {
                        attempts: recoveries,
                        last: reason,
                    });
                }
                // Cross-process, only a shared on-disk generation is
                // reachable: the dead worker's memory (and its buddy
                // images, which live in *other workers'* address spaces)
                // cannot be assembled by the root.
                if let Some((_, Store::Memory)) = &launch.auto {
                    node.kill();
                    return Err(RunError::RecoveryImpossible {
                        reason: "Store::Memory buddy images live inside worker processes; \
                                 the Net backend recovers from Store::Disk only (§13.5)"
                            .into(),
                        failure: reason,
                    });
                }
                let (generation, src) = match launch.recovery_source(&[]) {
                    Ok(x) => x,
                    Err(r) => {
                        node.kill();
                        return Err(RunError::RecoveryImpossible {
                            reason: r,
                            failure: reason,
                        });
                    }
                };
                if !launcher.can_respawn() {
                    node.kill();
                    return Err(RunError::RecoveryImpossible {
                        reason: "externally-launched workers cannot be respawned (§13.5)".into(),
                        failure: reason,
                    });
                }
                let next = epoch + 1;
                recoveries += 1;
                restore = Some(src);
                seq_start = generation + 1;
                // Fence first (stale survivors rejected at the door), then
                // tell the survivors, then bring back the dead PE.
                node.set_epoch(next);
                node.broadcast_restart(next, generation);
                launcher
                    .respawn(pe, next, generation + 1)
                    .map_err(boot_err)?;
                let deadline = now() + netcfg.rendezvous_timeout;
                while !node.peer_at_epoch(pe, next) {
                    if now() >= deadline {
                        node.kill();
                        return Err(RunError::Bootstrap(format!(
                            "respawned PE {pe} did not rejoin within {:?}",
                            netcfg.rendezvous_timeout
                        )));
                    }
                    // The wait doubles as event consumption: stale loss
                    // verdicts for the torn-down epoch die here, while
                    // payloads are preserved for the next incarnation's
                    // epoch guard to judge.
                    if let Ok(NetEvent::Payload { src: _, bytes }) =
                        node.events().recv_timeout(Duration::from_millis(10))
                    {
                        match decode_env(state.cfg.codec, &bytes) {
                            Ok(env) => local.push_back(env),
                            Err(_) => drops.decode += 1,
                        }
                    }
                }
                node.broadcast_table();
            }
            // Only workers receive Restart notices or lose "the root".
            DriveEnd::Restart { .. } | DriveEnd::RootLost { .. } => {
                node.kill();
                return Err(RunError::Bootstrap(
                    "root received a worker-only lifecycle event".into(),
                ));
            }
        }
    }
    unreachable!("restart loop returns from within");
}

/// Worker-process half: serve incarnations until the run completes, then
/// end the process. Exit codes: 0 clean, 2 bootstrap mismatch, 3 hang,
/// 4 root lost, 5 drain failure — a non-zero exit is what the root's child
/// poll turns into a peer failure.
fn run_worker(
    mut launch: Launch,
    netcfg: NetCfg,
    idle_timeout: Duration,
    we: WorkerEnv,
    #[cfg(feature = "analyze")] inject: Option<crate::analyze::InjectFault>,
) -> ! {
    if we.npes != launch.npes {
        eprintln!(
            "charm-net worker PE {}: spawned for {} PEs but the application configured {}",
            we.pe, we.npes, launch.npes
        );
        std::process::exit(2);
    }
    // run_restored() restore state is the root's to distribute; a worker
    // always bootstraps empty and receives its chares over the wire.
    launch.restore = None;
    let node = match NetNode::worker(&netcfg, we.pe, we.npes, we.nonce, we.root, we.epoch) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("charm-net worker PE {}: bootstrap failed: {e}", we.pe);
            std::process::exit(2);
        }
    };
    let mut cur_epoch = we.epoch;
    let mut cur_seq = we.seq;
    let mut drops = DropCounts::default();
    // Survives restarts: leftovers from a torn-down incarnation are
    // re-presented so the new scheduler's epoch guard counts the stale ones.
    let mut local = VecDeque::new();
    loop {
        let cfg = (launch.mk_cfg)(cur_epoch, None, cur_seq);
        let mut state = launch.mk_pe(we.pe, None, &cfg);
        #[cfg(feature = "analyze")]
        let kill = match inject {
            Some(crate::analyze::InjectFault::KillPe { pe, after_nth })
                if pe == we.pe && cur_epoch == 0 =>
            {
                Some((pe, after_nth))
            }
            _ => None,
        };
        // No catch_unwind here: a panic in a worker's handler takes the
        // process down (non-zero exit), which is exactly the failure the
        // root's supervisor recovers from — real-process semantics.
        let end = drive(
            &mut state,
            we.pe,
            &node,
            None,
            &mut local,
            idle_timeout,
            &mut [],
            &mut drops,
            #[cfg(feature = "analyze")]
            kill,
        );
        match end {
            DriveEnd::Exited => {
                let trace = state.finish_trace();
                let lb = state.lb_epochs();
                if let Ok(bytes) = state.cfg.codec.encode(&WirePerf::of(&trace.perf, lb)) {
                    let _ = node.send_stats(&bytes);
                }
                match node.drain(netcfg.drain_timeout) {
                    Ok(()) => std::process::exit(0),
                    Err(e) => {
                        eprintln!("charm-net worker PE {}: drain failed: {e}", we.pe);
                        std::process::exit(5);
                    }
                }
            }
            DriveEnd::Restart { epoch, generation } => {
                // Tear down this incarnation and rebuild at the announced
                // epoch; in-flight frames from the old one are stale by
                // the epoch rule and die in `PeState::handle`.
                cur_epoch = epoch;
                cur_seq = generation + 1;
            }
            DriveEnd::Hung(idle) => {
                node.kill();
                eprintln!("charm-net worker PE {}: idle for {idle:?}", we.pe);
                std::process::exit(3);
            }
            DriveEnd::RootLost { incarnation } => {
                node.kill();
                eprintln!(
                    "charm-net worker PE {}: root lost in incarnation {incarnation}",
                    we.pe
                );
                std::process::exit(4);
            }
            // Only the root turns peer loss into a failure verdict.
            DriveEnd::PeerFailed { .. } => unreachable!("worker drive never fails a peer"),
        }
    }
}
