//! # Dynamic race/protocol detector (`--features analyze`)
//!
//! Layer 2 of the correctness tooling (DESIGN.md §6): with the `analyze`
//! feature enabled, every [`Envelope`](crate::msg::Envelope) carries an
//! [`EnvTrace`] — a globally unique id plus the sending PE's vector clock —
//! and every PE scheduler owns a [`Detector`] that checks happens-before
//! invariants as messages flow:
//!
//! * **No double delivery** — each traced envelope id enters a PE's
//!   delivered-set at most once (and, across the whole sim run, at most one
//!   PE's delivered-set).
//! * **Per-channel FIFO** — the sender component of successive clocks
//!   arriving on one (src → dst) channel is strictly increasing. Every send
//!   ticks the sender's own component, so out-of-order delivery on a
//!   channel is visible as a non-monotonic stamp. (The sim driver clamps
//!   per-channel delivery times under this feature so the modeled network
//!   provides the FIFO channels the threads backend and Charm++ both
//!   guarantee.)
//! * **Per-chare serialized execution** — entering an entry method for a
//!   chare already marked executing is reported.
//! * **Send/deliver balance at quiescence** — when a sim run drains its
//!   event queue (true quiescence: nothing in flight), the union of
//!   sent-sets must equal the union of delivered-sets; a sent-but-never-
//!   delivered id is a lost envelope.
//! * **FIFO when-guard drains** — the scheduler must always hand the
//!   *earliest* deliverable buffered message to a chare; skipping a ready
//!   message is reported (hook in `after_state_change`).
//!
//! Violations go to the run's [`FaultProbe`] when one is installed (the
//! fault-injection tests read it), and panic with an `analyze:` prefix
//! otherwise, so CI runs of the ordinary suite fail loudly on a real race.
//!
//! [`InjectFault`] is the test-only fault injector driven by the sim
//! backend: it duplicates or drops the Nth application envelope at the
//! network layer, which the detector must then report.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use crate::ids::{ChareId, Pe};

/// Per-envelope trace: unique id + the sender's vector clock at send time.
///
/// `id == 0` marks an untraced envelope (the bootstrap event, internally
/// re-parked envelopes, and aggregation batch frames — whose constituents
/// carry their own traces); untraced envelopes are exempt from accounting.
///
/// Serializable so batch records (`msg::push_batch_record`) can carry the
/// constituent's trace through the wire frame: batching must be invisible
/// to the detector, so the trace minted at emit time travels with the
/// record and is restored verbatim on split.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct EnvTrace {
    /// Globally unique envelope id:
    /// `epoch << 56 | (pe + 1) << 40 | seq` (epoch 0 — no recovery yet —
    /// keeps the original `(pe + 1) << 40 | seq` layout).
    pub id: u64,
    /// Sender's vector clock (length = npes) at the moment of send.
    pub clock: Vec<u64>,
}

/// Shared sink for detector findings. Installed via
/// `Runtime::analyze_probe`/`analyze_inject`; when present, violations are
/// collected here instead of panicking, so negative tests can assert on
/// them.
#[derive(Clone, Default)]
pub struct FaultProbe {
    findings: Arc<Mutex<Vec<String>>>,
}

impl FaultProbe {
    /// A fresh, empty probe.
    pub fn new() -> FaultProbe {
        FaultProbe::default()
    }

    /// Record one violation.
    pub fn report(&self, msg: String) {
        if let Ok(mut v) = self.findings.lock() {
            v.push(msg);
        }
    }

    /// Snapshot the findings recorded so far.
    pub fn findings(&self) -> Vec<String> {
        self.findings.lock().map(|v| v.clone()).unwrap_or_default()
    }

    /// Whether any finding's text contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.findings().iter().any(|f| f.contains(needle))
    }
}

impl std::fmt::Debug for FaultProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FaultProbe({} findings)", self.findings().len())
    }
}

/// Network-layer fault injected by the sim driver (tests only): the Nth
/// (0-based) QD-counted envelope shipped is duplicated or dropped — or a
/// whole PE is killed on its Nth delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectFault {
    /// Deliver the Nth application envelope twice.
    DuplicateNth(u64),
    /// Silently drop the Nth application envelope.
    DropNth(u64),
    /// Kill PE `pe` just as it is about to handle its `after_nth` (0-based)
    /// QD-counted envelope: under the sim backend the PE's state is
    /// discarded and that envelope lost; under the threads backend the PE
    /// thread panics (caught by the supervisor via `catch_unwind`). The
    /// fault fires only in the first incarnation, so the recovery attempt
    /// is not re-killed.
    KillPe {
        /// Victim PE.
        pe: Pe,
        /// 0-based count of QD-counted envelopes the victim handles first.
        after_nth: u64,
    },
}

/// Per-PE happens-before state: a vector clock plus send/deliver
/// accounting. One lives inside every `PeState` when the feature is on.
pub struct Detector {
    pe: Pe,
    /// Recovery epoch this detector audits. Embedded in every minted id;
    /// a delivered id minted under a different epoch is a violation (the
    /// scheduler must have discarded it as stale before the detector sees
    /// it). Restarts build fresh detectors, so epoch-0 ids keep the
    /// original `(pe + 1) << 40 | seq` format.
    epoch: u64,
    clock: Vec<u64>,
    next_seq: u64,
    sent: HashSet<u64>,
    delivered: HashSet<u64>,
    /// Last sender-component stamp seen per source PE (FIFO channel check).
    last_from: HashMap<Pe, u64>,
    executing: HashSet<ChareId>,
    probe: Option<FaultProbe>,
}

impl Detector {
    pub fn new(pe: Pe, npes: usize, epoch: u64, probe: Option<FaultProbe>) -> Detector {
        Detector {
            pe,
            epoch,
            clock: vec![0; npes],
            next_seq: 0,
            sent: HashSet::new(),
            delivered: HashSet::new(),
            last_from: HashMap::new(),
            executing: HashSet::new(),
            probe,
        }
    }

    /// Report a violation: into the probe when installed, else panic so the
    /// failure cannot be missed.
    pub fn violation(&self, msg: String) {
        match &self.probe {
            Some(p) => p.report(msg),
            None => panic!("analyze: {msg}"),
        }
    }

    /// A send event: tick this PE's clock component, mint a trace.
    pub fn on_send(&mut self) -> EnvTrace {
        self.clock[self.pe] += 1;
        self.next_seq += 1;
        let id = (self.epoch << 56) | ((self.pe as u64 + 1) << 40) | self.next_seq;
        self.sent.insert(id);
        EnvTrace {
            id,
            clock: self.clock.clone(),
        }
    }

    /// A delivery event: epoch check, dedup-check, per-channel FIFO check,
    /// clock join.
    pub fn on_deliver(&mut self, src: Pe, trace: &EnvTrace) {
        if trace.id == 0 {
            return; // untraced (bootstrap / re-parked)
        }
        if trace.id >> 56 != self.epoch {
            self.violation(format!(
                "stale-epoch envelope {:#x} (epoch {}) delivered on PE {} running epoch {} — \
                 the scheduler must discard pre-recovery traffic",
                trace.id,
                trace.id >> 56,
                self.pe,
                self.epoch
            ));
            return;
        }
        if !self.delivered.insert(trace.id) {
            self.violation(format!(
                "double-delivered envelope {:#x} from PE {src} on PE {}",
                trace.id, self.pe
            ));
        }
        // FIFO per (src → this PE) channel: the sender ticks its own clock
        // component on every send, so stamps arriving here from `src` must
        // be strictly increasing.
        let stamp = trace.clock.get(src).copied().unwrap_or(0);
        if let Some(&last) = self.last_from.get(&src) {
            if stamp <= last {
                self.violation(format!(
                    "per-channel FIFO violated on PE {}: envelope {:#x} from PE {src} \
                     carries stamp {stamp} after stamp {last} was already delivered",
                    self.pe, trace.id
                ));
            }
        }
        self.last_from.insert(src, stamp);
        // Happens-before join, then tick for the local delivery event.
        for (mine, theirs) in self.clock.iter_mut().zip(&trace.clock) {
            *mine = (*mine).max(*theirs);
        }
        self.clock[self.pe] += 1;
    }

    /// Entering an entry method on `id`; overlap means broken serialization.
    pub fn enter_chare(&mut self, id: &ChareId) {
        if !self.executing.insert(*id) {
            self.violation(format!(
                "overlapping entry-method execution on chare {id} (PE {})",
                self.pe
            ));
        }
    }

    /// Leaving the entry method on `id`.
    pub fn exit_chare(&mut self, id: &ChareId) {
        self.executing.remove(id);
    }

    /// This PE's current vector clock. The model checker snapshots it after
    /// every delivery: the post-handler clock is both the delivery event's
    /// clock and the send clock of every envelope the handler emitted
    /// (handlers are atomic transitions, so emit-time granularity finer
    /// than the handler would claim concurrency no schedule can realize).
    pub fn clock(&self) -> &[u64] {
        &self.clock
    }

    /// Send/deliver accounting for the end-of-run balance check:
    /// `(sent ids, delivered ids)`.
    pub fn summary(&self) -> (Vec<u64>, Vec<u64>) {
        (
            self.sent.iter().copied().collect(),
            self.delivered.iter().copied().collect(),
        )
    }
}

/// Cross-PE balance check, run by the sim driver after the event loop.
///
/// `drained` is true when the run ended because the event queue emptied —
/// true quiescence, at which every sent envelope must have been delivered.
/// After a clean `exit()` messages may legitimately still be in flight, so
/// only the duplicate check applies.
pub fn check_balance(
    summaries: Vec<(Vec<u64>, Vec<u64>)>,
    drained: bool,
    probe: Option<&FaultProbe>,
) {
    let mut sent: HashSet<u64> = HashSet::new();
    let mut delivered: HashSet<u64> = HashSet::new();
    let report = |msg: String| match probe {
        Some(p) => p.report(msg),
        None => panic!("analyze: {msg}"),
    };
    for (s, d) in summaries {
        sent.extend(s);
        for id in d {
            if !delivered.insert(id) {
                report(format!(
                    "envelope {id:#x} delivered on more than one PE (double delivery across the machine)"
                ));
            }
        }
    }
    if drained {
        let mut lost: Vec<u64> = sent.difference(&delivered).copied().collect();
        lost.sort_unstable();
        for id in lost {
            report(format!(
                "lost envelope {id:#x}: sent but never delivered, yet the machine reached quiescence"
            ));
        }
    }
}

/// The trace counters' version of [`check_balance`]: at true quiescence the
/// machine-wide QD-counted sends must equal the handles. `totals` is one
/// `(sent, processed)` pair per PE.
pub fn check_counter_balance(totals: &[(u64, u64)], drained: bool, probe: Option<&FaultProbe>) {
    if !drained {
        return; // after exit() messages may legitimately be in flight
    }
    let sent: u64 = totals.iter().map(|(s, _)| s).sum();
    let processed: u64 = totals.iter().map(|(_, p)| p).sum();
    if sent != processed {
        let msg =
            format!("trace counter imbalance at quiescence: {sent} sent vs {processed} processed");
        match probe {
            Some(p) => p.report(msg),
            None => panic!("analyze: {msg}"),
        }
    }
}
