//! Messages, payloads and the runtime envelope.
//!
//! Entry-method arguments travel as a [`Payload`]: same-PE sends keep the
//! boxed value and move it by reference into the callee (the paper's §II-D
//! optimization — ownership transfer in Rust enforces the "caller must give
//! up ownership" rule at compile time), while cross-PE sends serialize with
//! the active codec into a shared, refcounted [`WireBytes`] buffer. Fan-out
//! (broadcast, multicast, collection creation) clones the handle, never the
//! bytes, so N destinations share one allocation.

use std::any::Any;

use charm_wire::{Codec, EncodePool, WireBytes};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::collections::CollSpec;
use crate::ids::{ChareId, CollectionId, FutureId, Index, Pe};
use crate::lb::LbChareStat;
use crate::reduction::{RedData, RedTarget, Reducer};

/// Marker for types usable as entry-method arguments, constructor arguments
/// and future values. Blanket-implemented: any serde-able `Send` type works.
pub trait Message: Serialize + DeserializeOwned + Send + 'static {}
impl<T: Serialize + DeserializeOwned + Send + 'static> Message for T {}

/// A type-erased message value.
pub type BoxMsg = Box<dyn Any + Send>;

/// An entry-method argument in transit.
pub enum Payload {
    /// Same-process payload, passed by move (never serialized).
    Local(BoxMsg),
    /// Serialized payload (cross-PE): a refcounted handle onto one shared
    /// allocation, so fan-out clones the handle, not the bytes.
    Wire(WireBytes),
}

impl Payload {
    /// Serialized size, if already on the wire.
    pub fn wire_len(&self) -> usize {
        match self {
            Payload::Local(_) => 0,
            Payload::Wire(b) => b.len(),
        }
    }

    /// Recover a typed value: downcast if local, decode if serialized.
    pub fn take<V: Message>(self, codec: Codec) -> V {
        match self {
            Payload::Local(b) => *b.downcast::<V>().unwrap_or_else(|_| {
                // analyze: allow(panic, "sender and receiver can disagree on an entry's message type only via a registration bug; surfaced loudly on first use")
                panic!("payload type mismatch for {}", std::any::type_name::<V>())
            }),
            Payload::Wire(bytes) => codec.decode::<V>(&bytes).unwrap_or_else(|e| {
                // analyze: allow(panic, "bytes were produced by this codec's own encoder; decode failure is a codec bug")
                panic!(
                    "payload decode failed for {}: {e}",
                    std::any::type_name::<V>()
                )
            }),
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Local(_) => write!(f, "Payload::Local"),
            Payload::Wire(b) => write!(f, "Payload::Wire({}B)", b.len()),
        }
    }
}

/// An outgoing typed payload: the boxed value plus the encoder captured at
/// the (generic) call site, so the scheduler can serialize it later if the
/// destination turns out to be remote — without any type registry lookup.
pub struct OutPayload {
    pub(crate) any: BoxMsg,
    pub(crate) encode: fn(&dyn Any, Codec, &mut EncodePool) -> charm_wire::Result<WireBytes>,
}

impl OutPayload {
    /// Wrap a typed message.
    pub fn new<M: Message>(m: M) -> OutPayload {
        OutPayload {
            any: Box::new(m),
            encode: |any, codec, pool| {
                let m = any
                    .downcast_ref::<M>()
                    // analyze: allow(panic, "the encoder closure is built alongside `any` with the same concrete type; the downcast cannot fail")
                    .expect("OutPayload encoder type invariant");
                codec.encode_shared_with(pool, m)
            },
        }
    }

    /// Turn into a transit payload for `dst`: local stays boxed, remote is
    /// serialized into a pooled scratch buffer and published as shared
    /// bytes. `same_pe_byref=false` (ablation switch) forces serialization
    /// even locally.
    pub fn into_payload(
        self,
        local: bool,
        same_pe_byref: bool,
        codec: Codec,
        pool: &mut EncodePool,
    ) -> charm_wire::Result<Payload> {
        if local && same_pe_byref {
            Ok(Payload::Local(self.any))
        } else {
            Ok(Payload::Wire((self.encode)(&*self.any, codec, pool)?))
        }
    }
}

impl std::fmt::Debug for OutPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OutPayload")
    }
}

/// The body of a [`EnvKind::MigrateChare`] envelope: a migrating chare's
/// packed state plus its runtime baggage. Boxed inside the envelope — the
/// sim backend keeps up to 10^6 envelopes in flight, and an unboxed
/// migration body (three vectors plus scalars) would dominate the enum
/// size for every message kind.
#[derive(Debug)]
pub struct MigrateMsg {
    /// Collection of the migrating chare.
    pub coll: CollectionId,
    /// Its index.
    pub index: Index,
    /// Serialized chare state.
    pub data: Vec<u8>,
    /// Buffered (when-guard deferred) messages, serialized, with
    /// their pending reply futures and per-message guard ids.
    pub buffered: Vec<(Vec<u8>, Option<FutureId>, Option<u32>)>,
    /// Accumulated load since the last LB epoch, nanoseconds.
    pub load_ns: u64,
    /// The chare's reduction sequence number.
    pub red_seq: u64,
    /// Whether this migration is part of an LB epoch (completion is
    /// then reported to the LB root).
    pub for_lb: bool,
    /// PEs this chare has left a forwarding stub on, oldest first. Each
    /// hop appends the departing PE; when the trail reaches
    /// [`crate::pe::MAX_FWD_HOPS`] the arrival PE collapses the chain by
    /// sending every trail PE (and the home) a `LocationUpdate`.
    pub trail: Vec<Pe>,
}

/// A unit of inter-PE communication.
#[derive(Debug)]
pub struct Envelope {
    /// Sending PE.
    pub src: Pe,
    /// What the message is.
    pub kind: EnvKind,
    /// Recovery epoch (machine incarnation) this envelope belongs to. A
    /// scheduler discards envelopes stamped with an epoch other than its
    /// own, so in-flight pre-failure traffic can never double-deliver into
    /// post-restore state.
    pub epoch: u64,
    /// Sender-clock emission stamp (ns), set by the emitting scheduler.
    /// The receiver derives a send→deliver latency sample from it with a
    /// monotone clamp (clocks are per-PE); 0 means "not stamped" (driver-
    /// injected envelopes) and records no sample.
    pub sent_ns: u64,
    /// Happens-before trace (id + sender vector clock) for the dynamic
    /// race detector. Only present with `--features analyze`.
    #[cfg(feature = "analyze")]
    pub trace: crate::analyze::EnvTrace,
}

impl Envelope {
    /// Build an envelope; the trace (when the `analyze` feature is on)
    /// starts untraced and is stamped by the sending scheduler's detector.
    /// The epoch starts at 0 (the first incarnation); schedulers stamp
    /// their own epoch on emission, and drivers re-stamp the bootstrap
    /// envelope of a recovery attempt.
    pub fn new(src: Pe, kind: EnvKind) -> Envelope {
        Envelope {
            src,
            kind,
            epoch: 0,
            sent_ns: 0,
            #[cfg(feature = "analyze")]
            trace: crate::analyze::EnvTrace::default(),
        }
    }

    /// Clone the envelope if its kind supports it — used only by the
    /// fault-injection harness to double-deliver a message. The duplicate
    /// keeps the original trace id, exactly like a network-level duplicate.
    #[cfg(feature = "analyze")]
    pub fn try_clone(&self) -> Option<Envelope> {
        Some(Envelope {
            src: self.src,
            kind: self.kind.try_clone()?,
            epoch: self.epoch,
            sent_ns: self.sent_ns,
            trace: self.trace.clone(),
        })
    }
}

/// The runtime message set.
#[derive(Debug)]
pub enum EnvKind {
    /// Invoke an entry method on one chare.
    Entry {
        /// Destination chare.
        to: ChareId,
        /// The arguments.
        payload: Payload,
        /// Future to complete via `ctx.reply` (the `ret=True` mechanism).
        reply: Option<FutureId>,
        /// Registered per-message when-condition, if any (§II-E
        /// sender-side conditions).
        guard: Option<u32>,
    },
    /// A TRAM-style aggregation frame: `count` coalesced small [`Entry`]
    /// envelopes from one sender to one destination PE, packed into a
    /// single length-prefixed wire frame (see [`push_batch_record`] /
    /// [`split_batch`]). A batch is a transport artifact, not a delivery:
    /// it is never QD-counted and never traced itself — its constituents
    /// carry their own counts and happens-before traces, and the receiver
    /// re-expands them in frame (= emission) order so per-channel FIFO is
    /// preserved.
    ///
    /// [`Entry`]: EnvKind::Entry
    Batch {
        /// Number of coalesced entry messages in `frame`.
        count: u32,
        /// The record-framed constituents, one shared allocation.
        frame: WireBytes,
    },
    /// Invoke an entry method on every member of a collection; relayed down
    /// the PE spanning tree rooted at `root`.
    BroadcastEntry {
        /// Target collection.
        coll: CollectionId,
        /// Pre-encoded arguments, shared across hops and members (decoded
        /// once per member, never re-copied).
        bytes: WireBytes,
        /// Tree root (the broadcasting PE).
        root: Pe,
    },
    /// Replicate collection metadata and create locally-placed members;
    /// relayed down the PE tree rooted at `root`.
    CreateCollection {
        /// The collection being created.
        spec: CollSpec,
        /// Pre-encoded constructor argument, shared by all members.
        init: WireBytes,
        /// Tree root (the creating PE).
        root: Pe,
    },
    /// Create one element (sparse-array insert / singleton chare).
    InsertElem {
        /// Collection to insert into.
        coll: CollectionId,
        /// New element's index.
        index: Index,
        /// Constructor argument.
        init: Payload,
        /// Explicit PE requested by the inserter, if any.
        on_pe: Option<Pe>,
        /// `true` once the destination PE has been decided (the receiving
        /// PE is then the element's host).
        placed: bool,
    },
    /// Sparse-array insertion phase is complete (`ckDoneInserting`).
    DoneInserting {
        /// The collection.
        coll: CollectionId,
    },
    /// Deliver a value to a future on its home PE.
    FutureValue {
        /// The future.
        fid: FutureId,
        /// Its value.
        payload: Payload,
    },
    /// A partial reduction result flowing up the PE tree.
    RedPartial {
        /// Collection being reduced.
        coll: CollectionId,
        /// Reduction sequence number within the collection.
        redno: u64,
        /// Number of member contributions covered by `data`.
        count: u64,
        /// Combined partial data.
        data: RedData,
        /// The reducer in use.
        reducer: Reducer,
        /// Delivery target (fixed by the first contribution).
        target: Option<RedTarget>,
    },
    /// Final reduction value delivered to a single chare.
    RedDeliver {
        /// Destination chare.
        to: ChareId,
        /// Application tag selecting what the value means.
        tag: u32,
        /// The reduced data.
        data: RedData,
    },
    /// Final reduction value broadcast to all members of a collection.
    RedBroadcast {
        /// Destination collection.
        coll: CollectionId,
        /// Application tag.
        tag: u32,
        /// The reduced data.
        data: RedData,
        /// Tree root of the relay.
        root: Pe,
    },
    /// A migrating chare: its packed state plus its runtime baggage
    /// (boxed — see [`MigrateMsg`]).
    MigrateChare {
        /// The migration body.
        msg: Box<MigrateMsg>,
    },
    /// Tell a PE where a chare now lives (location cache update).
    LocationUpdate {
        /// The chare.
        id: ChareId,
        /// Its current PE.
        pe: Pe,
    },
    /// Adjust the reduction-tree subtree member count (sparse inserts).
    SubtreeAdd {
        /// The collection.
        coll: CollectionId,
        /// Members added (or removed, if negative) below this PE.
        delta: i64,
    },
    /// PE 0 asks every PE to report LB stats; only PEs with *no local
    /// participants* answer immediately (they would otherwise never reach
    /// their at-sync trigger and the epoch would hang).
    LbPoll,
    /// Per-PE load statistics, sent to PE 0 at an LB sync point.
    LbStats {
        /// One entry per LB-participating local chare.
        stats: Vec<LbChareStat>,
        /// Number of local chares that reached at_sync (sanity check).
        at_sync: u64,
    },
    /// PE 0 instructs a PE to emigrate the listed chares.
    LbDoMigrate {
        /// `(chare, destination)` pairs owned by the receiving PE.
        moves: Vec<(ChareId, Pe)>,
        /// Total number of migrations in the epoch (for completion count).
        total: u64,
    },
    /// A migrated chare arrived somewhere (destination → PE 0).
    LbMigrated,
    /// LB epoch complete: every PE resumes its at-sync chares.
    LbResume {
        /// Tree root of the relay (PE 0).
        root: Pe,
    },
    /// Hierarchical LB ([`crate::lb::LbMode::Tree`]): a PE whose local
    /// participants all reached at-sync nudges the LB root to start the
    /// epoch's poll wave. At most one per PE per epoch; the root starts
    /// the wave on the first matching kick and drops the rest.
    LbKick {
        /// The sender's LB epoch number (resumes seen); the root ignores
        /// kicks from any epoch but its current one, so a kick that
        /// arrives after its epoch completed cannot start a bogus wave.
        epoch: u64,
    },
    /// Hierarchical LB: poll wave relayed down the LB group tree. A PE
    /// reports up only after it has been polled, so child reports can
    /// never race ahead of the epoch start.
    LbTreePoll {
        /// LB epoch this wave belongs to. A PE that receives next epoch's
        /// poll before its own `LbResume` (the two travel different
        /// trees) parks the poll until the resume lands.
        epoch: u64,
        /// LB tree root (PE 0).
        root: Pe,
    },
    /// Hierarchical LB: a subtree's folded, bounded LB summary flowing up
    /// the LB group tree (boxed — it carries three vectors).
    LbTreeReport {
        /// The subtree summary.
        report: Box<crate::lb::LbTreeReport>,
    },
    /// Quiescence-detection probe (PE0 → all, relayed).
    QdProbe {
        /// Probe round number.
        round: u64,
        /// Tree root (PE 0).
        root: Pe,
    },
    /// Quiescence-detection counters (PE → PE0, combined up the tree).
    QdCounts {
        /// Probe round these counters answer.
        round: u64,
        /// Messages sent (subtree total).
        sent: u64,
        /// Messages processed (subtree total).
        done: u64,
        /// PEs covered.
        pes: u64,
    },
    /// Save a checkpoint of this PE's chares (initiated by the PE that
    /// called `ctx.checkpoint`, or by PE 0 at the automatic cadence).
    CkptSave {
        /// Target directory; `None` keeps the image purely in memory
        /// (`Store::Memory` buddy checkpointing).
        dir: Option<String>,
        /// Checkpoint generation being taken.
        epoch: u64,
        /// Whether to push an in-memory copy to the buddy PE.
        buddy: bool,
    },
    /// An in-memory checkpoint image pushed to the owner's buddy PE
    /// (`(owner+1) % npes`), which acks the initiator once it holds it.
    CkptBuddy {
        /// The PE whose state this is.
        owner: Pe,
        /// The PE coordinating the checkpoint (receives the ack).
        initiator: Pe,
        /// Checkpoint generation.
        epoch: u64,
        /// Chares in the image (forwarded with the ack).
        saved: u64,
        /// The encoded [`crate::checkpoint::CkptFile`] image; refcounted,
        /// so the owner's local copy and the buddy copy share bytes until
        /// the envelope crosses a PE boundary.
        image: WireBytes,
    },
    /// A PE finished writing its checkpoint file (back to the initiator).
    CkptAck {
        /// Chares it saved.
        saved: u64,
    },
    /// Install collection metadata during a restore: no members are
    /// constructed (they arrive as `MigrateChare` envelopes) and subtree
    /// counts start at zero. Relayed down the PE tree rooted at `root`.
    RestoreColl {
        /// The collection being re-installed.
        spec: CollSpec,
        /// Tree root (PE 0).
        root: Pe,
    },
    /// Ask PE 0 to run quiescence detection and complete `fid` when done.
    QdRequest {
        /// Future completed (with `()`) at quiescence.
        fid: crate::ids::FutureId,
    },
    /// Telemetry sweep request (PE 0 → all, relayed down the PE tree).
    /// Control traffic, never QD-counted: sweeps fire *at* quiescence
    /// (while QD waiters are held), so the reduction sees a stable frame.
    TelemetryProbe {
        /// Sweep sequence number.
        seq: u64,
        /// Tree root (PE 0).
        root: Pe,
    },
    /// A merged telemetry frame flowing up the PE tree to PE 0: each inner
    /// node folds its children's frames into its own sample before
    /// forwarding (the in-band metric reduction).
    TelemetryFrame {
        /// Sweep sequence number this frame answers.
        seq: u64,
        /// The (partially merged) metric frame; boxed — it carries two
        /// dense histograms and would otherwise dominate the enum size.
        frame: Box<charm_trace::MetricFrame>,
    },
    /// Start the main chare (delivered once, to PE 0).
    Bootstrap,
    /// Shut the runtime down.
    Exit,
    /// Supervisor-initiated teardown of a failed incarnation: stop the
    /// scheduler loop without treating it as an application exit. Unlike
    /// every other kind, `Halt` is honored regardless of its epoch stamp.
    Halt,
}

impl EnvKind {
    /// Whether this message counts toward quiescence detection (application
    /// traffic) as opposed to runtime control traffic.
    pub fn counts_for_qd(&self) -> bool {
        matches!(
            self,
            EnvKind::Entry { .. }
                | EnvKind::BroadcastEntry { .. }
                | EnvKind::InsertElem { .. }
                | EnvKind::FutureValue { .. }
                | EnvKind::RedPartial { .. }
                | EnvKind::RedDeliver { .. }
                | EnvKind::RedBroadcast { .. }
                | EnvKind::MigrateChare { .. }
        )
    }

    /// How many QD-counted *deliveries* this envelope carries: `count` for
    /// an aggregation batch (the batch itself is never QD-counted, but each
    /// constituent is), 1 for ordinary application traffic, 0 for runtime
    /// control messages. The PE-kill fault injector walks this weight so a
    /// failure point expressed as "the Nth delivery" lands at the same
    /// logical position whether or not aggregation is on.
    #[cfg(feature = "analyze")]
    pub fn qd_weight(&self) -> u64 {
        match self {
            EnvKind::Batch { count, .. } => u64::from(*count),
            k if k.counts_for_qd() => 1,
            _ => 0,
        }
    }

    /// Clone the kinds whose payloads are cheaply shareable (wire bytes,
    /// reduction data) — enough for the fault injector to duplicate any
    /// cross-PE application envelope. `Payload::Local` and control kinds
    /// return `None`.
    #[cfg(feature = "analyze")]
    pub fn try_clone(&self) -> Option<EnvKind> {
        fn clone_payload(p: &Payload) -> Option<Payload> {
            match p {
                Payload::Local(_) => None,
                Payload::Wire(b) => Some(Payload::Wire(b.clone())),
            }
        }
        match self {
            EnvKind::Entry {
                to,
                payload,
                reply,
                guard,
            } => Some(EnvKind::Entry {
                to: *to,
                payload: clone_payload(payload)?,
                reply: *reply,
                guard: *guard,
            }),
            EnvKind::BroadcastEntry { coll, bytes, root } => Some(EnvKind::BroadcastEntry {
                coll: *coll,
                bytes: bytes.clone(),
                root: *root,
            }),
            EnvKind::InsertElem {
                coll,
                index,
                init,
                on_pe,
                placed,
            } => Some(EnvKind::InsertElem {
                coll: *coll,
                index: *index,
                init: clone_payload(init)?,
                on_pe: *on_pe,
                placed: *placed,
            }),
            EnvKind::FutureValue { fid, payload } => Some(EnvKind::FutureValue {
                fid: *fid,
                payload: clone_payload(payload)?,
            }),
            EnvKind::RedDeliver { to, tag, data } => Some(EnvKind::RedDeliver {
                to: *to,
                tag: *tag,
                data: data.clone(),
            }),
            EnvKind::RedBroadcast {
                coll,
                tag,
                data,
                root,
            } => Some(EnvKind::RedBroadcast {
                coll: *coll,
                tag: *tag,
                data: data.clone(),
                root: *root,
            }),
            // The mutation build lets the fault injector duplicate
            // checkpoint acks: the pre-fix network layer drew no
            // app/control distinction, which is how the stray-ack panic
            // was reachable. Test-only; never compiled by default.
            #[cfg(feature = "mutation-ckptack")]
            EnvKind::CkptAck { saved } => Some(EnvKind::CkptAck { saved: *saved }),
            _ => None,
        }
    }

    /// Approximate on-wire size for the network cost model.
    pub fn size_hint(&self) -> usize {
        const HDR: usize = 32; // envelope header: ids, tags
        match self {
            EnvKind::Entry { payload, .. } => HDR + payload.wire_len(),
            EnvKind::Batch { frame, .. } => HDR + frame.len(),
            EnvKind::BroadcastEntry { bytes, .. } => HDR + bytes.len(),
            EnvKind::CreateCollection { init, .. } => HDR + 64 + init.len(),
            EnvKind::InsertElem { init, .. } => HDR + init.wire_len(),
            EnvKind::FutureValue { payload, .. } => HDR + payload.wire_len(),
            EnvKind::RedPartial { data, .. } => HDR + data.size_hint(),
            EnvKind::RedDeliver { data, .. } => HDR + data.size_hint(),
            EnvKind::RedBroadcast { data, .. } => HDR + data.size_hint(),
            EnvKind::MigrateChare { msg } => {
                HDR + msg.data.len()
                    + msg
                        .buffered
                        .iter()
                        .map(|(b, ..)| b.len() + 16)
                        .sum::<usize>()
            }
            EnvKind::CkptBuddy { image, .. } => HDR + image.len(),
            // A frame wires two sparse histograms plus scalars; the cost
            // model only needs the order of magnitude.
            EnvKind::TelemetryFrame { .. } => HDR + 512,
            EnvKind::LbStats { stats, .. } => HDR + stats.len() * 48,
            EnvKind::LbDoMigrate { moves, .. } => HDR + moves.len() * 40,
            EnvKind::LbTreeReport { report } => {
                HDR + report.acceptors.len() * 16 + report.spill.len() * 48
            }
            _ => HDR,
        }
    }
}

// =========================================================================
// Batch frames (TRAM-style aggregation)
// =========================================================================

/// Per-record header inside an [`EnvKind::Batch`] frame: everything an
/// `Entry` envelope carries besides its payload bytes. `src` and `epoch`
/// are batch-level — one sender, one incarnation per frame.
#[derive(serde::Serialize, serde::Deserialize)]
struct BatchHdr {
    to: ChareId,
    reply: Option<FutureId>,
    guard: Option<u32>,
    /// The constituent's emit stamp (sender clock, ns) — aggregation must
    /// not hide queueing delay from the latency histogram.
    sent_ns: u64,
    /// The constituent's happens-before trace, minted at emit time and
    /// carried through the frame so batching is invisible to the detector.
    #[cfg(feature = "analyze")]
    trace: crate::analyze::EnvTrace,
}

/// Append one entry record to a batch frame:
/// `varint(hdr_len) ++ codec(BatchHdr) ++ varint(payload_len) ++ payload`.
/// `scratch` is a caller-owned buffer reused across records so the header
/// encode never allocates at steady state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn push_batch_record(
    frame: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
    codec: Codec,
    to: ChareId,
    reply: Option<FutureId>,
    guard: Option<u32>,
    sent_ns: u64,
    #[cfg(feature = "analyze")] trace: crate::analyze::EnvTrace,
    payload: &[u8],
) -> charm_wire::Result<()> {
    let hdr = BatchHdr {
        to,
        reply,
        guard,
        sent_ns,
        #[cfg(feature = "analyze")]
        trace,
    };
    scratch.clear();
    codec.encode_into(scratch, &hdr)?;
    charm_wire::varint::write_u64(frame, scratch.len() as u64);
    frame.extend_from_slice(scratch);
    charm_wire::varint::write_u64(frame, payload.len() as u64);
    frame.extend_from_slice(payload);
    Ok(())
}

/// Split a batch frame back into `Entry` envelopes, in frame (= emission)
/// order. Payload bytes are copied out per record — the frame is one shared
/// allocation and `WireBytes` exposes no sub-slice view; that copy is the
/// per-message unpack cost the receiver pays (and the sim model charges).
/// With `inline_small` the copies of sub-64B records land inline in the
/// envelope (no per-record allocation); the bytes are identical either way.
pub(crate) fn split_batch(
    src: Pe,
    epoch: u64,
    frame: &[u8],
    codec: Codec,
    inline_small: bool,
) -> charm_wire::Result<Vec<Envelope>> {
    use charm_wire::WireError;
    let mut envs = Vec::new();
    let mut off = 0usize;
    while off < frame.len() {
        // analyze: allow(panic, "the loop condition and the bounded get() below keep off <= frame.len(); a tail slice at the boundary is empty, not out of bounds")
        let (hlen, used) = charm_wire::varint::read_u64(&frame[off..])?;
        off += used;
        let hdr_bytes = frame.get(off..off + hlen as usize).ok_or(WireError::Eof)?;
        let hdr: BatchHdr = codec.decode(hdr_bytes)?;
        off += hlen as usize;
        // analyze: allow(panic, "off was bounded to frame.len() by the successful get() above; a tail slice at the boundary is empty, not out of bounds")
        let (plen, used) = charm_wire::varint::read_u64(&frame[off..])?;
        off += used;
        let payload_bytes = frame.get(off..off + plen as usize).ok_or(WireError::Eof)?;
        off += plen as usize;
        let bytes = if inline_small {
            WireBytes::inline(payload_bytes)
                .unwrap_or_else(|| WireBytes::copy_from_slice(payload_bytes))
        } else {
            WireBytes::copy_from_slice(payload_bytes)
        };
        let mut env = Envelope::new(
            src,
            EnvKind::Entry {
                to: hdr.to,
                payload: Payload::Wire(bytes),
                reply: hdr.reply,
                guard: hdr.guard,
            },
        );
        env.epoch = epoch;
        env.sent_ns = hdr.sent_ns;
        #[cfg(feature = "analyze")]
        {
            env.trace = hdr.trace;
        }
        envs.push(env);
    }
    Ok(envs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sim backend keeps up to 10^6 envelopes in flight, so every
    /// in-flight event pays `size_of::<Envelope>()` whether or not it uses
    /// a fat variant. Fat bodies (migration state, LB subtree summaries,
    /// telemetry frames) are boxed to keep the enum at the size its
    /// hot-path variants ([`EnvKind::Entry`] with an inline-capable
    /// [`WireBytes`]) actually need. This pins the budget so a future
    /// variant can't silently re-inflate it.
    #[test]
    fn envelope_stays_compact() {
        // `Entry` is the floor: a chare id, a payload (inline-capable
        // `WireBytes` dominates), and two options. Anything past that plus
        // a tag word means some other variant carries fat inline.
        let floor = std::mem::size_of::<ChareId>()
            + std::mem::size_of::<Payload>()
            + std::mem::size_of::<Option<FutureId>>()
            + std::mem::size_of::<Option<u32>>();
        assert!(
            std::mem::size_of::<EnvKind>() <= floor + 16,
            "EnvKind is {}B but its hot-path variant needs only {}B — box the fat variant's body",
            std::mem::size_of::<EnvKind>(),
            floor
        );
        // Boxing keeps the fat bodies out of every in-flight envelope:
        // the migration body alone outweighs the whole enum.
        assert!(std::mem::size_of::<MigrateMsg>() > std::mem::size_of::<EnvKind>());
        assert!(std::mem::size_of::<Box<MigrateMsg>>() == std::mem::size_of::<usize>());
    }
}
