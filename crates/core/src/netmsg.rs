//! Wire form of [`Envelope`] for the Net backend (DESIGN.md §13).
//!
//! In-process backends move [`Envelope`]s by ownership; the Net backend
//! must turn them into bytes. Rather than forcing serde onto the runtime's
//! hot-path types (whose payload variants — [`Payload::Local`] boxes,
//! refcounted [`WireBytes`] handles — deliberately resist it), this module
//! defines a one-to-one serde mirror, [`WKind`], and converts at the
//! process boundary. The conversion is also where the backend's two
//! structural limits are enforced as typed errors instead of corruption:
//! a [`Payload::Local`] can never cross a process (it would mean the
//! scheduler mis-classified a destination), and telemetry frames are not
//! shipped (the Net backend rejects telemetry at configuration time).
//!
//! Cost note: crossing the boundary copies each `WireBytes` payload once
//! into the mirror (and once back on receive). That is inherent to leaving
//! the process — the refcounted sharing that makes in-process fan-out free
//! has no meaning across address spaces.

use charm_trace::PePerf;
use charm_wire::{Codec, WireBytes};
use serde::{Deserialize, Serialize};

use crate::collections::CollSpec;
use crate::ids::{ChareId, CollectionId, FutureId, Index, Pe};
use crate::lb::LbChareStat;
use crate::msg::{EnvKind, Envelope, Payload};
use crate::reduction::{RedData, RedTarget, Reducer};

/// Why an envelope could not cross the process boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum NetMsgError {
    /// The envelope kind (or payload form) is not representable on the
    /// wire; the message names it.
    Unsupported(&'static str),
    /// The codec failed (encode side: a bug; decode side: hostile or torn
    /// bytes from the network).
    Codec(String),
}

impl std::fmt::Display for NetMsgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetMsgError::Unsupported(what) => write!(f, "not wire-representable: {what}"),
            NetMsgError::Codec(e) => write!(f, "envelope codec: {e}"),
        }
    }
}

/// Serde mirror of [`EnvKind`]. Field meanings are documented on the
/// original; this type exists only to cross the process boundary, so the
/// variants stay in lockstep — a new `EnvKind` without a mirror arm is a
/// compile error in `to_wire`/`from_wire`, not a silent wire gap.
#[derive(Serialize, Deserialize)]
enum WKind {
    Entry {
        to: ChareId,
        payload: Vec<u8>,
        reply: Option<FutureId>,
        guard: Option<u32>,
    },
    Batch {
        count: u32,
        frame: Vec<u8>,
    },
    BroadcastEntry {
        coll: CollectionId,
        bytes: Vec<u8>,
        root: Pe,
    },
    CreateCollection {
        spec: CollSpec,
        init: Vec<u8>,
        root: Pe,
    },
    InsertElem {
        coll: CollectionId,
        index: Index,
        init: Vec<u8>,
        on_pe: Option<Pe>,
        placed: bool,
    },
    DoneInserting {
        coll: CollectionId,
    },
    FutureValue {
        fid: FutureId,
        payload: Vec<u8>,
    },
    RedPartial {
        coll: CollectionId,
        redno: u64,
        count: u64,
        data: RedData,
        reducer: Reducer,
        target: Option<RedTarget>,
    },
    RedDeliver {
        to: ChareId,
        tag: u32,
        data: RedData,
    },
    RedBroadcast {
        coll: CollectionId,
        tag: u32,
        data: RedData,
        root: Pe,
    },
    MigrateChare {
        coll: CollectionId,
        index: Index,
        data: Vec<u8>,
        buffered: Vec<(Vec<u8>, Option<FutureId>, Option<u32>)>,
        load_ns: u64,
        red_seq: u64,
        for_lb: bool,
        trail: Vec<Pe>,
    },
    LocationUpdate {
        id: ChareId,
        pe: Pe,
    },
    SubtreeAdd {
        coll: CollectionId,
        delta: i64,
    },
    LbPoll,
    LbStats {
        stats: Vec<LbChareStat>,
        at_sync: u64,
    },
    LbDoMigrate {
        moves: Vec<(ChareId, Pe)>,
        total: u64,
    },
    LbMigrated,
    LbResume {
        root: Pe,
    },
    QdProbe {
        round: u64,
        root: Pe,
    },
    QdCounts {
        round: u64,
        sent: u64,
        done: u64,
        pes: u64,
    },
    CkptSave {
        dir: Option<String>,
        epoch: u64,
        buddy: bool,
    },
    CkptBuddy {
        owner: Pe,
        initiator: Pe,
        epoch: u64,
        saved: u64,
        image: Vec<u8>,
    },
    CkptAck {
        saved: u64,
    },
    RestoreColl {
        spec: CollSpec,
        root: Pe,
    },
    QdRequest {
        fid: FutureId,
    },
    TelemetryProbe {
        seq: u64,
        root: Pe,
    },
    Bootstrap,
    Exit,
    Halt,
}

/// Serde mirror of [`Envelope`].
#[derive(Serialize, Deserialize)]
struct WEnv {
    src: Pe,
    epoch: u64,
    sent_ns: u64,
    #[cfg(feature = "analyze")]
    trace: crate::analyze::EnvTrace,
    kind: WKind,
}

fn payload_bytes(p: Payload) -> Result<Vec<u8>, NetMsgError> {
    match p {
        // A Local payload reaching the network path means the scheduler
        // classified a remote destination as same-PE — a runtime bug that
        // must surface as a typed error, never as a silent drop of a box.
        Payload::Local(_) => Err(NetMsgError::Unsupported(
            "Payload::Local at a process boundary",
        )),
        // analyze: allow(payload-copy, "process boundary: refcounted sharing cannot cross address spaces, so the one copy here is the serialization itself")
        Payload::Wire(b) => Ok(b.to_vec()),
    }
}

fn wire_vec(b: WireBytes) -> Vec<u8> {
    // analyze: allow(payload-copy, "process boundary: the wire mirror owns its bytes; see payload_bytes")
    b.to_vec()
}

fn to_wire(kind: EnvKind) -> Result<WKind, NetMsgError> {
    Ok(match kind {
        EnvKind::Entry {
            to,
            payload,
            reply,
            guard,
        } => WKind::Entry {
            to,
            payload: payload_bytes(payload)?,
            reply,
            guard,
        },
        EnvKind::Batch { count, frame } => WKind::Batch {
            count,
            frame: wire_vec(frame),
        },
        EnvKind::BroadcastEntry { coll, bytes, root } => WKind::BroadcastEntry {
            coll,
            bytes: wire_vec(bytes),
            root,
        },
        EnvKind::CreateCollection { spec, init, root } => WKind::CreateCollection {
            spec,
            init: wire_vec(init),
            root,
        },
        EnvKind::InsertElem {
            coll,
            index,
            init,
            on_pe,
            placed,
        } => WKind::InsertElem {
            coll,
            index,
            init: payload_bytes(init)?,
            on_pe,
            placed,
        },
        EnvKind::DoneInserting { coll } => WKind::DoneInserting { coll },
        EnvKind::FutureValue { fid, payload } => WKind::FutureValue {
            fid,
            payload: payload_bytes(payload)?,
        },
        EnvKind::RedPartial {
            coll,
            redno,
            count,
            data,
            reducer,
            target,
        } => WKind::RedPartial {
            coll,
            redno,
            count,
            data,
            reducer,
            target,
        },
        EnvKind::RedDeliver { to, tag, data } => WKind::RedDeliver { to, tag, data },
        EnvKind::RedBroadcast {
            coll,
            tag,
            data,
            root,
        } => WKind::RedBroadcast {
            coll,
            tag,
            data,
            root,
        },
        EnvKind::MigrateChare { msg } => {
            let m = *msg;
            WKind::MigrateChare {
                coll: m.coll,
                index: m.index,
                data: m.data,
                buffered: m.buffered,
                load_ns: m.load_ns,
                red_seq: m.red_seq,
                for_lb: m.for_lb,
                trail: m.trail,
            }
        }
        EnvKind::LocationUpdate { id, pe } => WKind::LocationUpdate { id, pe },
        EnvKind::SubtreeAdd { coll, delta } => WKind::SubtreeAdd { coll, delta },
        EnvKind::LbPoll => WKind::LbPoll,
        EnvKind::LbStats { stats, at_sync } => WKind::LbStats { stats, at_sync },
        EnvKind::LbDoMigrate { moves, total } => WKind::LbDoMigrate { moves, total },
        EnvKind::LbMigrated => WKind::LbMigrated,
        EnvKind::LbResume { root } => WKind::LbResume { root },
        EnvKind::QdProbe { round, root } => WKind::QdProbe { round, root },
        EnvKind::QdCounts {
            round,
            sent,
            done,
            pes,
        } => WKind::QdCounts {
            round,
            sent,
            done,
            pes,
        },
        EnvKind::CkptSave { dir, epoch, buddy } => WKind::CkptSave { dir, epoch, buddy },
        EnvKind::CkptBuddy {
            owner,
            initiator,
            epoch,
            saved,
            image,
        } => WKind::CkptBuddy {
            owner,
            initiator,
            epoch,
            saved,
            image: wire_vec(image),
        },
        EnvKind::CkptAck { saved } => WKind::CkptAck { saved },
        EnvKind::RestoreColl { spec, root } => WKind::RestoreColl { spec, root },
        EnvKind::QdRequest { fid } => WKind::QdRequest { fid },
        EnvKind::TelemetryProbe { seq, root } => WKind::TelemetryProbe { seq, root },
        // Telemetry is rejected when a Net runtime is configured; an
        // in-flight frame here would mean that gate was bypassed.
        // Hierarchical LB is rejected when a Net runtime is configured
        // (`LbMode::Tree` + `Backend::Net`); in-flight tree-protocol
        // control here would mean that gate was bypassed.
        EnvKind::LbKick { .. } | EnvKind::LbTreePoll { .. } | EnvKind::LbTreeReport { .. } => {
            return Err(NetMsgError::Unsupported(
                "hierarchical LB control messages on the Net backend",
            ))
        }
        EnvKind::TelemetryFrame { .. } => {
            return Err(NetMsgError::Unsupported(
                "telemetry frames on the Net backend",
            ))
        }
        EnvKind::Bootstrap => WKind::Bootstrap,
        EnvKind::Exit => WKind::Exit,
        EnvKind::Halt => WKind::Halt,
    })
}

fn from_wire(kind: WKind) -> EnvKind {
    match kind {
        WKind::Entry {
            to,
            payload,
            reply,
            guard,
        } => EnvKind::Entry {
            to,
            payload: Payload::Wire(WireBytes::from_vec(payload)),
            reply,
            guard,
        },
        WKind::Batch { count, frame } => EnvKind::Batch {
            count,
            frame: WireBytes::from_vec(frame),
        },
        WKind::BroadcastEntry { coll, bytes, root } => EnvKind::BroadcastEntry {
            coll,
            bytes: WireBytes::from_vec(bytes),
            root,
        },
        WKind::CreateCollection { spec, init, root } => EnvKind::CreateCollection {
            spec,
            init: WireBytes::from_vec(init),
            root,
        },
        WKind::InsertElem {
            coll,
            index,
            init,
            on_pe,
            placed,
        } => EnvKind::InsertElem {
            coll,
            index,
            init: Payload::Wire(WireBytes::from_vec(init)),
            on_pe,
            placed,
        },
        WKind::DoneInserting { coll } => EnvKind::DoneInserting { coll },
        WKind::FutureValue { fid, payload } => EnvKind::FutureValue {
            fid,
            payload: Payload::Wire(WireBytes::from_vec(payload)),
        },
        WKind::RedPartial {
            coll,
            redno,
            count,
            data,
            reducer,
            target,
        } => EnvKind::RedPartial {
            coll,
            redno,
            count,
            data,
            reducer,
            target,
        },
        WKind::RedDeliver { to, tag, data } => EnvKind::RedDeliver { to, tag, data },
        WKind::RedBroadcast {
            coll,
            tag,
            data,
            root,
        } => EnvKind::RedBroadcast {
            coll,
            tag,
            data,
            root,
        },
        WKind::MigrateChare {
            coll,
            index,
            data,
            buffered,
            load_ns,
            red_seq,
            for_lb,
            trail,
        } => EnvKind::MigrateChare {
            msg: Box::new(crate::msg::MigrateMsg {
                coll,
                index,
                data,
                buffered,
                load_ns,
                red_seq,
                for_lb,
                trail,
            }),
        },
        WKind::LocationUpdate { id, pe } => EnvKind::LocationUpdate { id, pe },
        WKind::SubtreeAdd { coll, delta } => EnvKind::SubtreeAdd { coll, delta },
        WKind::LbPoll => EnvKind::LbPoll,
        WKind::LbStats { stats, at_sync } => EnvKind::LbStats { stats, at_sync },
        WKind::LbDoMigrate { moves, total } => EnvKind::LbDoMigrate { moves, total },
        WKind::LbMigrated => EnvKind::LbMigrated,
        WKind::LbResume { root } => EnvKind::LbResume { root },
        WKind::QdProbe { round, root } => EnvKind::QdProbe { round, root },
        WKind::QdCounts {
            round,
            sent,
            done,
            pes,
        } => EnvKind::QdCounts {
            round,
            sent,
            done,
            pes,
        },
        WKind::CkptSave { dir, epoch, buddy } => EnvKind::CkptSave { dir, epoch, buddy },
        WKind::CkptBuddy {
            owner,
            initiator,
            epoch,
            saved,
            image,
        } => EnvKind::CkptBuddy {
            owner,
            initiator,
            epoch,
            saved,
            image: WireBytes::from_vec(image),
        },
        WKind::CkptAck { saved } => EnvKind::CkptAck { saved },
        WKind::RestoreColl { spec, root } => EnvKind::RestoreColl { spec, root },
        WKind::QdRequest { fid } => EnvKind::QdRequest { fid },
        WKind::TelemetryProbe { seq, root } => EnvKind::TelemetryProbe { seq, root },
        WKind::Bootstrap => EnvKind::Bootstrap,
        WKind::Exit => EnvKind::Exit,
        WKind::Halt => EnvKind::Halt,
    }
}

/// Serialize an outbound envelope for the socket.
pub(crate) fn encode_env(codec: Codec, env: Envelope) -> Result<Vec<u8>, NetMsgError> {
    let w = WEnv {
        src: env.src,
        epoch: env.epoch,
        sent_ns: env.sent_ns,
        #[cfg(feature = "analyze")]
        trace: env.trace,
        kind: to_wire(env.kind)?,
    };
    codec
        .encode(&w)
        .map_err(|e| NetMsgError::Codec(e.to_string()))
}

/// Deserialize an inbound envelope. The bytes passed framing CRCs, but the
/// decode is still fallible — a peer built with different features (or a
/// corrupted allocator) must yield a typed error, not UB or a panic.
pub(crate) fn decode_env(codec: Codec, bytes: &[u8]) -> Result<Envelope, NetMsgError> {
    let w: WEnv = codec
        .decode(bytes)
        .map_err(|e| NetMsgError::Codec(e.to_string()))?;
    Ok(Envelope {
        src: w.src,
        kind: from_wire(w.kind),
        epoch: w.epoch,
        sent_ns: w.sent_ns,
        #[cfg(feature = "analyze")]
        trace: w.trace,
    })
}

/// Serde mirror of [`PePerf`] plus the per-PE LB-epoch count: a worker's
/// end-of-run statistics block, shipped to the root at shutdown so the
/// [`crate::runtime::RunReport`] covers every process.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct WirePerf {
    pub pe: usize,
    pub wall_ns: u64,
    pub busy_ns: u64,
    pub idle_ns: u64,
    pub overhead_ns: u64,
    pub msgs_sent: u64,
    pub msgs_processed: u64,
    pub sent_remote: u64,
    pub sent_local: u64,
    pub bytes_sent_remote: u64,
    pub bytes_sent_local: u64,
    pub bytes_recv: u64,
    pub bytes_encoded: u64,
    pub entries: u64,
    pub migrations: u64,
    pub guard_buffered: u64,
    pub guard_drained: u64,
    pub red_contributes: u64,
    pub red_delivers: u64,
    pub bcast_relays: u64,
    pub ckpt_bytes: u64,
    pub stale_discarded: u64,
    pub batches_sent: u64,
    pub batch_msgs: u64,
    pub slab_hits: u64,
    pub slab_misses: u64,
    pub inline_payloads: u64,
    pub dispatch_hits: u64,
    pub dispatch_misses: u64,
    pub events_dropped: u64,
    pub fwd_hops: u64,
    pub lb_peak_stats: u64,
    /// LB epochs this PE participated in (reduced to the report total).
    pub lb_epochs: u64,
}

impl WirePerf {
    pub(crate) fn of(perf: &PePerf, lb_epochs: u64) -> WirePerf {
        WirePerf {
            pe: perf.pe,
            wall_ns: perf.wall_ns,
            busy_ns: perf.busy_ns,
            idle_ns: perf.idle_ns,
            overhead_ns: perf.overhead_ns,
            msgs_sent: perf.msgs_sent,
            msgs_processed: perf.msgs_processed,
            sent_remote: perf.sent_remote,
            sent_local: perf.sent_local,
            bytes_sent_remote: perf.bytes_sent_remote,
            bytes_sent_local: perf.bytes_sent_local,
            bytes_recv: perf.bytes_recv,
            bytes_encoded: perf.bytes_encoded,
            entries: perf.entries,
            migrations: perf.migrations,
            guard_buffered: perf.guard_buffered,
            guard_drained: perf.guard_drained,
            red_contributes: perf.red_contributes,
            red_delivers: perf.red_delivers,
            bcast_relays: perf.bcast_relays,
            ckpt_bytes: perf.ckpt_bytes,
            stale_discarded: perf.stale_discarded,
            batches_sent: perf.batches_sent,
            batch_msgs: perf.batch_msgs,
            slab_hits: perf.slab_hits,
            slab_misses: perf.slab_misses,
            inline_payloads: perf.inline_payloads,
            dispatch_hits: perf.dispatch_hits,
            dispatch_misses: perf.dispatch_misses,
            events_dropped: perf.events_dropped,
            fwd_hops: perf.fwd_hops,
            lb_peak_stats: perf.lb_peak_stats,
            lb_epochs,
        }
    }

    pub(crate) fn into_perf(self) -> (PePerf, u64) {
        let perf = PePerf {
            pe: self.pe,
            wall_ns: self.wall_ns,
            busy_ns: self.busy_ns,
            idle_ns: self.idle_ns,
            overhead_ns: self.overhead_ns,
            msgs_sent: self.msgs_sent,
            msgs_processed: self.msgs_processed,
            sent_remote: self.sent_remote,
            sent_local: self.sent_local,
            bytes_sent_remote: self.bytes_sent_remote,
            bytes_sent_local: self.bytes_sent_local,
            bytes_recv: self.bytes_recv,
            bytes_encoded: self.bytes_encoded,
            entries: self.entries,
            migrations: self.migrations,
            guard_buffered: self.guard_buffered,
            guard_drained: self.guard_drained,
            red_contributes: self.red_contributes,
            red_delivers: self.red_delivers,
            bcast_relays: self.bcast_relays,
            ckpt_bytes: self.ckpt_bytes,
            stale_discarded: self.stale_discarded,
            batches_sent: self.batches_sent,
            batch_msgs: self.batch_msgs,
            slab_hits: self.slab_hits,
            slab_misses: self.slab_misses,
            inline_payloads: self.inline_payloads,
            dispatch_hits: self.dispatch_hits,
            dispatch_misses: self.dispatch_misses,
            events_dropped: self.events_dropped,
            fwd_hops: self.fwd_hops,
            lb_peak_stats: self.lb_peak_stats,
        };
        (perf, self.lb_epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ChareId, CollectionId, Index};

    fn entry_env(codec: Codec) -> Envelope {
        let payload = codec.encode(&42u64).unwrap();
        let mut env = Envelope::new(
            1,
            EnvKind::Entry {
                to: ChareId {
                    coll: CollectionId { creator: 0, seq: 7 },
                    index: Index::new(&[]),
                },
                payload: Payload::Wire(WireBytes::from_vec(payload)),
                reply: None,
                guard: Some(3),
            },
        );
        env.epoch = 2;
        env.sent_ns = 99;
        env
    }

    #[test]
    fn envelope_round_trip_preserves_identity_fields() {
        for codec in [Codec::Fast, Codec::Pickle] {
            let bytes = encode_env(codec, entry_env(codec)).unwrap();
            let back = decode_env(codec, &bytes).unwrap();
            assert_eq!(back.src, 1);
            assert_eq!(back.epoch, 2);
            assert_eq!(back.sent_ns, 99);
            match back.kind {
                EnvKind::Entry {
                    to,
                    payload,
                    reply,
                    guard,
                } => {
                    assert_eq!(
                        to,
                        ChareId {
                            coll: CollectionId { creator: 0, seq: 7 },
                            index: Index::new(&[])
                        }
                    );
                    assert_eq!(reply, None);
                    assert_eq!(guard, Some(3));
                    assert_eq!(payload.take::<u64>(codec), 42);
                }
                other => panic!("wrong kind after round trip: {other:?}"),
            }
        }
    }

    #[test]
    fn local_payload_is_a_typed_error_not_a_panic() {
        let env = Envelope::new(
            0,
            EnvKind::Entry {
                to: ChareId {
                    coll: CollectionId { creator: 0, seq: 1 },
                    index: Index::new(&[]),
                },
                payload: Payload::Local(Box::new(5u32)),
                reply: None,
                guard: None,
            },
        );
        match encode_env(Codec::Fast, env) {
            Err(NetMsgError::Unsupported(what)) => assert!(what.contains("Local")),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn garbage_bytes_are_a_typed_decode_error() {
        for codec in [Codec::Fast, Codec::Pickle] {
            assert!(matches!(
                decode_env(codec, &[0xFF, 0x13, 0x37, 0x00, 0x01]),
                Err(NetMsgError::Codec(_))
            ));
        }
    }

    #[test]
    fn control_kinds_round_trip() {
        for kind in [
            EnvKind::Bootstrap,
            EnvKind::Exit,
            EnvKind::Halt,
            EnvKind::LbPoll,
        ] {
            let bytes = encode_env(Codec::Fast, Envelope::new(3, kind)).unwrap();
            let back = decode_env(Codec::Fast, &bytes).unwrap();
            assert_eq!(back.src, 3);
        }
    }

    #[test]
    fn wire_perf_round_trips_through_codec() {
        let perf = PePerf {
            pe: 2,
            msgs_sent: 10,
            bytes_recv: 1234,
            stale_discarded: 5,
            ..PePerf::default()
        };
        let w = WirePerf::of(&perf, 3);
        let bytes = Codec::Fast.encode(&w).unwrap();
        let back: WirePerf = Codec::Fast.decode(&bytes).unwrap();
        let (p2, lb) = back.into_perf();
        assert_eq!(p2, perf);
        assert_eq!(lb, 3);
    }
}
