//! The `Chare` trait — the distributed migratable object (paper §II-B) —
//! plus the type registry that lets every PE construct, dispatch to, pack
//! and unpack chares of any registered type.

use std::any::{Any, TypeId};
use std::collections::HashMap;

use charm_wire::Codec;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::ctx::Ctx;
use crate::ids::ChareTypeId;
use crate::msg::{BoxMsg, Message};
use crate::reduction::RedData;

/// A distributed object. Implementing this is the analog of subclassing
/// `Chare` in CharmPy.
///
/// Entry methods are the variants of [`Chare::Msg`]: a remote invocation
/// sends one `Msg` value, and [`Chare::receive`] plays the role of the
/// method body dispatch. The `when`-decorator of CharmPy (§II-E) maps to
/// [`Chare::guard`]: a message whose guard returns `false` is buffered by
/// the runtime and retried after every state change of the chare.
pub trait Chare: Sized + Send + 'static {
    /// The entry-method message enum.
    type Msg: Message;
    /// Constructor argument (same value delivered to every member of a
    /// collection, as in CharmPy's `args=[...]`).
    type Init: Message + Clone;

    /// Construct a new instance (the chare's `__init__`).
    fn create(init: Self::Init, ctx: &mut Ctx) -> Self;

    /// Handle one entry-method invocation.
    fn receive(&mut self, msg: Self::Msg, ctx: &mut Ctx);

    /// The `@when` condition: return `false` to defer `msg` until the
    /// chare's state changes. Must be a pure function of `(self, msg)`.
    fn guard(&self, _msg: &Self::Msg) -> bool {
        true
    }

    /// Deliver the result of a reduction targeted at this chare. `tag` is
    /// the application-chosen discriminator passed at `contribute` time
    /// (standing in for CharmPy's `proxy.method` reduction targets).
    fn reduced(&mut self, _tag: u32, _data: RedData, _ctx: &mut Ctx) {}

    /// Called after a load-balancing epoch completes, on every chare that
    /// had called `at_sync` (Charm++'s `ResumeFromSync`).
    fn resume_from_sync(&mut self, _ctx: &mut Ctx) {}
}

/// Object-safe wrapper around a concrete chare. The scheduler stores chares
/// as `Box<dyn ChareBox>` and uses these hooks for typed dispatch.
pub trait ChareBox: Send {
    /// The chare as `Any` (for coroutine downcasts and guard predicates).
    fn any_mut(&mut self) -> &mut dyn Any;
    /// The chare as `Any` (shared).
    fn any_ref(&self) -> &dyn Any;
    /// Deliver an entry message (must be the chare's `Msg` type).
    fn deliver(&mut self, msg: BoxMsg, ctx: &mut Ctx);
    /// Evaluate the when-guard for a pending message.
    fn guard_ok(&self, msg: &BoxMsg) -> bool;
    /// Deliver a reduction result.
    fn reduced_dyn(&mut self, tag: u32, data: RedData, ctx: &mut Ctx);
    /// Notify the chare that load balancing finished.
    fn resume_from_sync_dyn(&mut self, ctx: &mut Ctx);
    /// Serialize the chare for migration; `None` if the type was not
    /// registered as migratable.
    fn pack(&self, codec: Codec) -> Option<charm_wire::Result<Vec<u8>>>;
    /// Registered type of this chare.
    fn type_id(&self) -> ChareTypeId;
}

/// Serializer hook stored by migratable holders.
type PackFn<T> = fn(&T, Codec) -> charm_wire::Result<Vec<u8>>;

/// The concrete `ChareBox` implementation for a chare type `T`.
pub(crate) struct Holder<T: Chare> {
    pub inner: T,
    tid: ChareTypeId,
    pack_fn: Option<PackFn<T>>,
}

impl<T: Chare> ChareBox for Holder<T> {
    fn any_mut(&mut self) -> &mut dyn Any {
        &mut self.inner
    }
    fn any_ref(&self) -> &dyn Any {
        &self.inner
    }
    fn deliver(&mut self, msg: BoxMsg, ctx: &mut Ctx) {
        let msg = *msg.downcast::<T::Msg>().unwrap_or_else(|_| {
            panic!(
                "message type mismatch delivering to {}",
                std::any::type_name::<T>()
            )
        });
        self.inner.receive(msg, ctx);
    }
    fn guard_ok(&self, msg: &BoxMsg) -> bool {
        let msg = msg.downcast_ref::<T::Msg>().unwrap_or_else(|| {
            panic!(
                "message type mismatch in guard for {}",
                std::any::type_name::<T>()
            )
        });
        self.inner.guard(msg)
    }
    fn reduced_dyn(&mut self, tag: u32, data: RedData, ctx: &mut Ctx) {
        self.inner.reduced(tag, data, ctx);
    }
    fn resume_from_sync_dyn(&mut self, ctx: &mut Ctx) {
        self.inner.resume_from_sync(ctx);
    }
    fn pack(&self, codec: Codec) -> Option<charm_wire::Result<Vec<u8>>> {
        self.pack_fn.map(|f| f(&self.inner, codec))
    }
    fn type_id(&self) -> ChareTypeId {
        self.tid
    }
}

/// Deserializer hook for migrated chares.
pub(crate) type UnpackFn = fn(Codec, &[u8], ChareTypeId) -> charm_wire::Result<Box<dyn ChareBox>>;

/// Per-type hooks used by the scheduler when only the registered type id is
/// known (decoding wire messages, constructing members, unpacking
/// migrants).
pub struct ChareVTable {
    /// Human-readable type name (diagnostics).
    pub name: &'static str,
    #[allow(dead_code)]
    pub(crate) rust_type: TypeId,
    pub(crate) decode_msg: fn(Codec, &[u8]) -> charm_wire::Result<BoxMsg>,
    pub(crate) encode_msg: fn(&dyn Any, Codec) -> charm_wire::Result<Vec<u8>>,
    pub(crate) decode_init: fn(Codec, &[u8]) -> charm_wire::Result<BoxMsg>,
    pub(crate) encode_init: fn(&dyn Any, Codec) -> charm_wire::Result<Vec<u8>>,
    pub(crate) construct: fn(BoxMsg, &mut Ctx, ChareTypeId) -> Box<dyn ChareBox>,
    pub(crate) unpack: Option<UnpackFn>,
    /// Whether instances can migrate.
    pub migratable: bool,
}

fn decode_msg_impl<T: Chare>(codec: Codec, bytes: &[u8]) -> charm_wire::Result<BoxMsg> {
    Ok(Box::new(codec.decode::<T::Msg>(bytes)?) as BoxMsg)
}
fn encode_msg_impl<T: Chare>(any: &dyn Any, codec: Codec) -> charm_wire::Result<Vec<u8>> {
    let m = any
        .downcast_ref::<T::Msg>()
        .expect("encode_msg type invariant");
    codec.encode(m)
}
fn decode_init_impl<T: Chare>(codec: Codec, bytes: &[u8]) -> charm_wire::Result<BoxMsg> {
    Ok(Box::new(codec.decode::<T::Init>(bytes)?) as BoxMsg)
}
fn encode_init_impl<T: Chare>(any: &dyn Any, codec: Codec) -> charm_wire::Result<Vec<u8>> {
    let m = any
        .downcast_ref::<T::Init>()
        .expect("encode_init type invariant");
    codec.encode(m)
}

/// Build a `Holder` directly from an existing value (used by the runtime
/// for the built-in main chare).
pub(crate) fn holder_for<T: Chare>(inner: T, tid: ChareTypeId) -> impl ChareBox {
    Holder {
        inner,
        tid,
        pack_fn: None,
    }
}
fn construct_impl<T: Chare>(init: BoxMsg, ctx: &mut Ctx, tid: ChareTypeId) -> Box<dyn ChareBox> {
    let init = *init
        .downcast::<T::Init>()
        .expect("constructor argument type invariant");
    Box::new(Holder {
        inner: T::create(init, ctx),
        tid,
        pack_fn: None,
    })
}
fn construct_mig_impl<T: Chare + Serialize + DeserializeOwned>(
    init: BoxMsg,
    ctx: &mut Ctx,
    tid: ChareTypeId,
) -> Box<dyn ChareBox> {
    let init = *init
        .downcast::<T::Init>()
        .expect("constructor argument type invariant");
    Box::new(Holder {
        inner: T::create(init, ctx),
        tid,
        pack_fn: Some(|c, codec| codec.encode(c)),
    })
}
fn unpack_impl<T: Chare + Serialize + DeserializeOwned>(
    codec: Codec,
    bytes: &[u8],
    tid: ChareTypeId,
) -> charm_wire::Result<Box<dyn ChareBox>> {
    Ok(Box::new(Holder {
        inner: codec.decode::<T>(bytes)?,
        tid,
        pack_fn: Some(|c, codec| codec.encode(c)),
    }) as Box<dyn ChareBox>)
}

/// Type-erased per-message guard: `(chare, msg) -> deliverable?`.
pub(crate) type MsgGuardFn = std::sync::Arc<dyn Fn(&dyn Any, &BoxMsg) -> bool + Send + Sync>;

/// Handle to a registered per-message when-condition (paper §II-E's
/// sender-side conditions, listed there as future work). Attach it to a
/// send with [`crate::Proxy::send_when`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgGuard(pub(crate) u32);

/// Registry of per-message guards.
#[derive(Default, Clone)]
pub struct MsgGuards {
    fns: Vec<MsgGuardFn>,
}

impl MsgGuards {
    /// Register a guard for chare type `T`: the message is delivered only
    /// once `pred(chare, msg)` holds (evaluated at the receiver after every
    /// state change, like the receiver-side `Chare::guard`).
    pub fn register<T: Chare>(
        &mut self,
        pred: impl Fn(&T, &T::Msg) -> bool + Send + Sync + 'static,
    ) -> MsgGuard {
        let id = self.fns.len() as u32;
        self.fns.push(std::sync::Arc::new(move |chare, msg| {
            let chare = chare
                .downcast_ref::<T>()
                .expect("per-message guard evaluated on a chare of a different type");
            let msg = msg
                .downcast_ref::<T::Msg>()
                .expect("per-message guard evaluated on a message of a different type");
            pred(chare, msg)
        }));
        MsgGuard(id)
    }

    pub(crate) fn get(&self, id: u32) -> &MsgGuardFn {
        self.fns
            .get(id as usize)
            .unwrap_or_else(|| panic!("per-message guard {id} not registered"))
    }
}

/// The chare type registry. Populated on the runtime builder *before*
/// start, in the same order on every PE (they share the process, so this is
/// trivially true here; a multi-process port would rely on identical
/// program order, as Charm++ does).
#[derive(Default)]
pub struct Registry {
    tables: Vec<ChareVTable>,
    by_rust: HashMap<TypeId, ChareTypeId>,
}

impl Registry {
    /// Register a (non-migratable) chare type.
    pub fn register<T: Chare>(&mut self) -> ChareTypeId {
        self.insert::<T>(ChareVTable {
            name: std::any::type_name::<T>(),
            rust_type: TypeId::of::<T>(),
            decode_msg: decode_msg_impl::<T>,
            encode_msg: encode_msg_impl::<T>,
            decode_init: decode_init_impl::<T>,
            encode_init: encode_init_impl::<T>,
            construct: construct_impl::<T>,
            unpack: None,
            migratable: false,
        })
    }

    /// Register a migratable chare type (requires serde on the chare state,
    /// the analog of being pickleable in CharmPy §II-I).
    pub fn register_migratable<T: Chare + Serialize + DeserializeOwned>(&mut self) -> ChareTypeId {
        self.insert::<T>(ChareVTable {
            name: std::any::type_name::<T>(),
            rust_type: TypeId::of::<T>(),
            decode_msg: decode_msg_impl::<T>,
            encode_msg: encode_msg_impl::<T>,
            decode_init: decode_init_impl::<T>,
            encode_init: encode_init_impl::<T>,
            construct: construct_mig_impl::<T>,
            unpack: Some(unpack_impl::<T>),
            migratable: true,
        })
    }

    fn insert<T: Chare>(&mut self, table: ChareVTable) -> ChareTypeId {
        if let Some(&tid) = self.by_rust.get(&TypeId::of::<T>()) {
            return tid; // idempotent re-registration
        }
        let tid = ChareTypeId(self.tables.len() as u32);
        self.by_rust.insert(TypeId::of::<T>(), tid);
        self.tables.push(table);
        tid
    }

    /// Look up the registered id of `T`, panicking with guidance if absent.
    pub fn type_of<T: Chare>(&self) -> ChareTypeId {
        *self.by_rust.get(&TypeId::of::<T>()).unwrap_or_else(|| {
            panic!(
                "chare type {} was not registered; call .register::<T>() on the runtime builder",
                std::any::type_name::<T>()
            )
        })
    }

    /// Whether `T` is registered.
    pub fn is_registered<T: Chare>(&self) -> bool {
        self.by_rust.contains_key(&TypeId::of::<T>())
    }

    /// VTable for a registered type id.
    pub fn vtable(&self, tid: ChareTypeId) -> &ChareVTable {
        &self.tables[tid.0 as usize]
    }

    /// Display name for a type id; total (traces may carry ids the local
    /// registry has never seen, e.g. after a partial restore).
    pub fn name_of(&self, tid: ChareTypeId) -> &'static str {
        self.tables
            .get(tid.0 as usize)
            .map(|t| t.name)
            .unwrap_or("<unregistered>")
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}
