//! The load-balancing framework (paper §II-J).
//!
//! Chares created with `use_lb` participate in AtSync load balancing: each
//! calls `ctx.at_sync()` at a convenient point; once all local participants
//! have, the PE ships measured per-chare loads to PE 0, which runs the
//! configured [`LbStrategy`], broadcasts migration orders, waits for every
//! migrant to land, and finally resumes all participants via
//! `resume_from_sync` — exactly the Charm++ protocol shape.
//!
//! Strategies themselves live in the `charm-lb` crate; this module defines
//! the interface and the per-PE/central protocol state.

use serde::{Deserialize, Serialize};

use crate::ids::{ChareId, Pe};

/// Measured load of one chare over the last LB epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbChareStat {
    /// Which chare.
    pub id: ChareId,
    /// Current PE.
    pub pe: Pe,
    /// Accumulated entry-method time since the last epoch, nanoseconds.
    pub load_ns: u64,
    /// Whether the runtime can move it (registered migratable).
    pub migratable: bool,
}

/// The global picture handed to a strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbStats {
    /// Number of PEs.
    pub npes: usize,
    /// Every participating chare in the system.
    pub chares: Vec<LbChareStat>,
}

impl LbStats {
    /// Per-PE total load implied by current placement, seconds.
    pub fn pe_loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0; self.npes];
        for c in &self.chares {
            loads[c.pe] += c.load_ns as f64 / 1e9;
        }
        loads
    }

    /// Max/avg PE load ratio — 1.0 is perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let loads = self.pe_loads();
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let avg = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
        if avg > 0.0 {
            max / avg
        } else {
            1.0
        }
    }
}

/// A centralized load-balancing strategy: maps measured loads to a set of
/// migrations. Implementations must only move chares with
/// `migratable == true` and must return destinations `< npes`.
pub trait LbStrategy: Send + Sync {
    /// Compute migrations as `(chare, new_pe)` pairs; chares not listed
    /// stay put.
    fn assign(&self, stats: &LbStats) -> Vec<(ChareId, Pe)>;

    /// Strategy name for logs and reports.
    fn name(&self) -> &'static str {
        "unnamed-lb"
    }
}

/// Per-PE protocol state for one LB epoch.
#[derive(Default)]
pub struct LbPeState {
    /// Local participants that called `at_sync` this epoch.
    pub at_sync_count: u64,
    /// Whether this PE already shipped its stats.
    pub stats_sent: bool,
}

/// Central (PE 0) protocol state.
#[derive(Default)]
pub struct LbCentral {
    /// Stats received so far, one batch per PE.
    pub batches: Vec<Vec<LbChareStat>>,
    /// PEs heard from.
    pub pes_reported: usize,
    /// Migrations outstanding in the current epoch.
    pub migrations_pending: u64,
    /// Whether an epoch is currently running.
    pub in_epoch: bool,
    /// Completed LB epochs (reported in `RunReport`).
    pub epochs_done: u64,
    /// Clock stamp of the current epoch's first stats arrival (traces the
    /// epoch duration).
    pub epoch_start_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CollectionId, Index};

    fn stat(pe: Pe, load_ms: u64) -> LbChareStat {
        LbChareStat {
            id: ChareId {
                coll: CollectionId { creator: 0, seq: 0 },
                index: Index::from(pe as i32),
            },
            pe,
            load_ns: load_ms * 1_000_000,
            migratable: true,
        }
    }

    #[test]
    fn pe_loads_aggregate() {
        let s = LbStats {
            npes: 3,
            chares: vec![stat(0, 10), stat(0, 20), stat(2, 30)],
        };
        let loads = s.pe_loads();
        assert!((loads[0] - 0.030).abs() < 1e-12);
        assert_eq!(loads[1], 0.0);
        assert!((loads[2] - 0.030).abs() < 1e-12);
    }

    #[test]
    fn imbalance_ratio() {
        let balanced = LbStats {
            npes: 2,
            chares: vec![stat(0, 10), stat(1, 10)],
        };
        assert!((balanced.imbalance() - 1.0).abs() < 1e-9);
        let skewed = LbStats {
            npes: 2,
            chares: vec![stat(0, 30), stat(1, 10)],
        };
        assert!((skewed.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn imbalance_of_empty_system_is_one() {
        let s = LbStats {
            npes: 4,
            chares: vec![],
        };
        assert_eq!(s.imbalance(), 1.0);
    }
}
