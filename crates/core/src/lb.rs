//! The load-balancing framework (paper §II-J).
//!
//! Chares created with `use_lb` participate in AtSync load balancing: each
//! calls `ctx.at_sync()` at a convenient point; once all local participants
//! have, the PE ships measured per-chare loads to PE 0, which runs the
//! configured [`LbStrategy`], broadcasts migration orders, waits for every
//! migrant to land, and finally resumes all participants via
//! `resume_from_sync` — exactly the Charm++ protocol shape.
//!
//! Strategies themselves live in the `charm-lb` crate; this module defines
//! the interface and the per-PE/central protocol state.

use serde::{Deserialize, Serialize};

use crate::ids::{ChareId, Pe};
use crate::tree::TreeShape;

/// How AtSync load balancing is coordinated across PEs
/// (`Runtime::lb_mode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LbMode {
    /// Every PE ships its full per-chare stats to PE 0, which runs the
    /// configured [`LbStrategy`] over the global picture — the Charm++
    /// CentralLB shape. Simple and optimal-information, but PE 0
    /// materializes O(nchares) stats: fine to ~10^3 PEs, a serialization
    /// point beyond.
    #[default]
    Central,
    /// Hierarchical GreedyRefine: PEs reduce stats up a `group_size`-ary
    /// spanning tree; each interior node refines placement *within its
    /// subtree* (issuing migration orders directly) and passes only
    /// bounded residual spill and a bounded acceptor list upward, so no
    /// PE ever holds more than O(nchares/npes · group_size) stats.
    /// `Tree { group_size: npes }` degenerates to a flat tree whose root
    /// sees everything — it reproduces `Central` with charm-lb's
    /// `GreedyRefineLb` migration-for-migration.
    Tree {
        /// Fan-in of the LB reduction tree (≥ 2 to be hierarchical).
        group_size: usize,
    },
}

impl LbMode {
    /// The LB reduction tree for this mode: a flat `group_size`-ary tree
    /// rooted at PE 0 (distinct from the broadcast tree, whose shape the
    /// user picks independently).
    pub fn tree_shape(&self) -> TreeShape {
        let arity = match *self {
            LbMode::Central => 4,
            LbMode::Tree { group_size } => group_size.max(1),
        };
        TreeShape {
            arity,
            cores_per_node: None,
        }
    }
}

/// Measured load of one chare over the last LB epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbChareStat {
    /// Which chare.
    pub id: ChareId,
    /// Current PE.
    pub pe: Pe,
    /// Accumulated entry-method time since the last epoch, nanoseconds.
    pub load_ns: u64,
    /// Whether the runtime can move it (registered migratable).
    pub migratable: bool,
}

/// The global picture handed to a strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbStats {
    /// Number of PEs.
    pub npes: usize,
    /// Every participating chare in the system.
    pub chares: Vec<LbChareStat>,
}

impl LbStats {
    /// Per-PE total load implied by current placement, seconds.
    pub fn pe_loads(&self) -> Vec<f64> {
        let mut loads = Vec::new();
        self.pe_loads_into(&mut loads);
        loads
    }

    /// [`LbStats::pe_loads`] into a caller-owned buffer — the strategy
    /// hot path reuses one buffer across epochs instead of allocating
    /// an `npes`-sized vector per call.
    pub fn pe_loads_into(&self, loads: &mut Vec<f64>) {
        loads.clear();
        loads.resize(self.npes, 0.0);
        for c in &self.chares {
            loads[c.pe] += c.load_ns as f64 / 1e9;
        }
    }

    /// Max/avg PE load ratio — 1.0 is perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let loads = self.pe_loads();
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let avg = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
        if avg > 0.0 {
            max / avg
        } else {
            1.0
        }
    }
}

/// A centralized load-balancing strategy: maps measured loads to a set of
/// migrations. Implementations must only move chares with
/// `migratable == true` and must return destinations `< npes`.
pub trait LbStrategy: Send + Sync {
    /// Compute migrations as `(chare, new_pe)` pairs; chares not listed
    /// stay put.
    fn assign(&self, stats: &LbStats) -> Vec<(ChareId, Pe)>;

    /// Strategy name for logs and reports.
    fn name(&self) -> &'static str {
        "unnamed-lb"
    }
}

/// Per-PE protocol state for one LB epoch.
#[derive(Default)]
pub struct LbPeState {
    /// Local participants that called `at_sync` this epoch.
    pub at_sync_count: u64,
    /// Whether this PE already shipped its stats (central) or its tree
    /// report (hierarchical).
    pub stats_sent: bool,
}

/// Central (PE 0) protocol state.
#[derive(Default)]
pub struct LbCentral {
    /// Stats received so far, folded flat on arrival (in arrival order —
    /// the same order the old one-batch-per-PE drain produced). The
    /// buffer's capacity is reused across epochs.
    pub chares: Vec<LbChareStat>,
    /// PEs heard from.
    pub pes_reported: usize,
    /// Migrations ordered in the current epoch.
    pub migrations_pending: u64,
    /// Migrations that have landed (`LbMigrated` received). Kept as a
    /// separate counter rather than decrementing `migrations_pending`
    /// so completions may arrive *before* the total is known — which
    /// happens under [`LbMode::Tree`], where interior nodes issue orders
    /// before the root has finished its own merge.
    pub migrations_done: u64,
    /// Whether an epoch is currently running.
    pub in_epoch: bool,
    /// Completed LB epochs (reported in `RunReport`).
    pub epochs_done: u64,
    /// Clock stamp of the current epoch's first stats arrival (traces the
    /// epoch duration).
    pub epoch_start_ns: u64,
}

/// One subtree's residual picture, reduced up the LB tree
/// ([`LbMode::Tree`]). Everything a parent needs: subtree totals for the
/// average, a bounded list of placement targets, and the bounded spill of
/// chares the subtree could not place under the limit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbTreeReport {
    /// PEs in the subtree (drives the load average).
    pub pe_count: u64,
    /// Migratable candidates seen in the subtree (drives the spill cap).
    pub chare_count: u64,
    /// Total measured load in the subtree, migratable or not.
    pub total_load_ns: u64,
    /// Migration orders already issued inside the subtree.
    pub ordered: u64,
    /// Bounded (pe, load) placement targets, least-loaded retained.
    pub acceptors: Vec<(Pe, u64)>,
    /// Bounded residual candidates; loads are *not* included in any
    /// acceptor entry (they are "lifted" until an ancestor places them
    /// or the root lets them stay put).
    pub spill: Vec<LbChareStat>,
}

/// Per-PE protocol state for one hierarchical LB epoch. Buffers are
/// cleared, not dropped, between epochs.
#[derive(Default)]
pub struct LbTreePe {
    /// This PE has seen the epoch's `LbTreePoll`.
    pub polled: bool,
    /// This PE already sent its `LbKick` to the root this epoch.
    pub kicked: bool,
    /// LB-tree children this PE relayed the epoch's poll to (and so owes
    /// reports from before it can report itself).
    pub children_expected: usize,
    /// Child reports folded in so far.
    pub children_seen: usize,
    /// Folded accumulator over child reports (plus own contribution at
    /// report time).
    pub pe_count: u64,
    /// See [`LbTreeReport::chare_count`].
    pub chare_count: u64,
    /// See [`LbTreeReport::total_load_ns`].
    pub total_load_ns: u64,
    /// Orders issued in this PE's subtree so far.
    pub ordered: u64,
    /// Folded child acceptors (own entry added at report time).
    pub acceptors: Vec<(Pe, u64)>,
    /// Folded child spill (own candidates added at report time).
    pub spill: Vec<LbChareStat>,
    /// Peak candidate-stat count materialized on this PE this run — the
    /// O(nchares/npes · group_size) bound the scale tests assert.
    pub peak_stats: u64,
    /// LB epochs completed from this PE's point of view (resumes seen).
    /// Tags kicks so the root can discard stragglers from finished
    /// epochs; survives [`LbTreePe::reset`].
    pub epoch: u64,
    /// A next-epoch poll that outran this PE's `LbResume` (the poll wave
    /// and the resume broadcast travel different trees). Replayed right
    /// after the resume lands; survives [`LbTreePe::reset`].
    pub pending_poll: Option<(u64, Pe)>,
}

impl LbTreePe {
    /// Reset for the next epoch, keeping buffer capacity.
    pub fn reset(&mut self) {
        self.polled = false;
        self.kicked = false;
        self.children_expected = 0;
        self.children_seen = 0;
        self.pe_count = 0;
        self.chare_count = 0;
        self.total_load_ns = 0;
        self.ordered = 0;
        self.acceptors.clear();
        self.spill.clear();
    }

    /// Fold one child report into the accumulator.
    pub fn fold(&mut self, r: LbTreeReport) {
        self.children_seen += 1;
        self.pe_count += r.pe_count;
        self.chare_count += r.chare_count;
        self.total_load_ns += r.total_load_ns;
        self.ordered += r.ordered;
        self.acceptors.extend(r.acceptors);
        self.spill.extend(r.spill);
    }
}

/// Overload threshold shared by the hierarchical refine pass and
/// `charm-lb`'s `GreedyRefineLb`: a PE is an eligible target while its
/// load stays ≤ `avg · 1.05` (Charm++'s RefineLB default tolerance).
pub const REFINE_THRESHOLD_PERMILLE: u64 = 1050;

/// Per-PE load limit for a refine pass: `threshold/1000 · total/pe_count`
/// in exact integer arithmetic (u128 intermediate, no float drift between
/// PEs computing the same subtree).
pub fn refine_limit(total_load_ns: u64, pe_count: u64, threshold_permille: u64) -> u64 {
    if pe_count == 0 {
        return 0;
    }
    let limit = (total_load_ns as u128 * threshold_permille as u128) / (1000 * pe_count as u128);
    limit.min(u64::MAX as u128) as u64
}

/// Spill cap for one upward report: proportional to the subtree's
/// chares-per-PE density so the per-PE stat bound holds, with a floor so
/// leaves (pe_count 1) always pass *all* their candidates — required for
/// `Tree { group_size: npes }` to reproduce `Central` exactly.
pub fn spill_cap(chare_count: u64, pe_count: u64) -> usize {
    (2 * chare_count.div_ceil(pe_count.max(1))).max(16) as usize
}

/// Result of one [`greedy_refine_place`] pass.
#[derive(Debug, Default, PartialEq)]
pub struct RefineOutcome {
    /// Migration orders `(chare, current pe, destination)`; destination
    /// always differs from the current pe.
    pub moves: Vec<(ChareId, Pe, Pe)>,
    /// Candidates no acceptor could take under the limit; they stay
    /// lifted (spilled upward, or left in place at the root).
    pub leftover: Vec<LbChareStat>,
}

/// The shared GreedyRefine placement core: place `candidates` (whose
/// loads are counted in **no** acceptor entry) onto `acceptors` without
/// pushing any acceptor past `limit`. Deterministic in its *set* of
/// inputs — both lists are fully sorted internally, so arrival order
/// (batch order at PE 0, child-report order at a tree node) cannot leak
/// into the outcome. Heaviest candidates place first; each prefers its
/// current PE when that PE is a listed acceptor with room (zero moves on
/// a balanced system), else takes the least-loaded acceptor by
/// `(load, pe)`. `acceptors` is updated in place with the placed loads.
pub fn greedy_refine_place(
    acceptors: &mut Vec<(Pe, u64)>,
    mut candidates: Vec<LbChareStat>,
    limit: u64,
) -> RefineOutcome {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    acceptors.sort_unstable_by_key(|&(pe, _)| pe);
    candidates.sort_unstable_by(|a, b| b.load_ns.cmp(&a.load_ns).then(a.id.cmp(&b.id)));
    // Min-heap of (load, pe, index); entries go stale when an acceptor
    // takes a chare and are skipped lazily.
    let mut heap: BinaryHeap<Reverse<(u64, Pe, usize)>> = acceptors
        .iter()
        .enumerate()
        .map(|(i, &(pe, load))| Reverse((load, pe, i)))
        .collect();
    let mut out = RefineOutcome::default();
    for c in candidates {
        // Prefer staying put: the current PE keeps the chare while it has
        // room under the limit.
        if let Ok(i) = acceptors.binary_search_by_key(&c.pe, |&(pe, _)| pe) {
            let new = acceptors[i].1.saturating_add(c.load_ns);
            if new <= limit {
                acceptors[i].1 = new;
                heap.push(Reverse((new, c.pe, i)));
                continue;
            }
        }
        // Least-loaded acceptor with room, skipping stale heap entries.
        let mut placed = false;
        while let Some(&Reverse((load, pe, i))) = heap.peek() {
            if acceptors[i].1 != load {
                heap.pop();
                continue;
            }
            let new = load.saturating_add(c.load_ns);
            if new > limit {
                break;
            }
            heap.pop();
            acceptors[i].1 = new;
            heap.push(Reverse((new, pe, i)));
            if pe != c.pe {
                out.moves.push((c.id, c.pe, pe));
            }
            placed = true;
            break;
        }
        if !placed {
            out.leftover.push(c);
        }
    }
    out
}

/// Truncate an upward report's acceptor list to the `cap` least-loaded
/// entries (by `(load, pe)`), dropping the rest — their PEs simply take
/// no further chares from ancestors.
pub fn truncate_acceptors(acceptors: &mut Vec<(Pe, u64)>, cap: usize) {
    if acceptors.len() > cap {
        acceptors.sort_unstable_by_key(|&(pe, load)| (load, pe));
        acceptors.truncate(cap);
    }
}

/// Truncate an upward report's spill to the `cap` heaviest candidates
/// (by `(load desc, id)`); the rest stay put on their current PEs.
pub fn truncate_spill(spill: &mut Vec<LbChareStat>, cap: usize) {
    if spill.len() > cap {
        spill.sort_unstable_by(|a, b| b.load_ns.cmp(&a.load_ns).then(a.id.cmp(&b.id)));
        spill.truncate(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CollectionId, Index};

    fn stat(pe: Pe, load_ms: u64) -> LbChareStat {
        LbChareStat {
            id: ChareId {
                coll: CollectionId { creator: 0, seq: 0 },
                index: Index::from(pe as i32),
            },
            pe,
            load_ns: load_ms * 1_000_000,
            migratable: true,
        }
    }

    #[test]
    fn pe_loads_aggregate() {
        let s = LbStats {
            npes: 3,
            chares: vec![stat(0, 10), stat(0, 20), stat(2, 30)],
        };
        let loads = s.pe_loads();
        assert!((loads[0] - 0.030).abs() < 1e-12);
        assert_eq!(loads[1], 0.0);
        assert!((loads[2] - 0.030).abs() < 1e-12);
    }

    #[test]
    fn imbalance_ratio() {
        let balanced = LbStats {
            npes: 2,
            chares: vec![stat(0, 10), stat(1, 10)],
        };
        assert!((balanced.imbalance() - 1.0).abs() < 1e-9);
        let skewed = LbStats {
            npes: 2,
            chares: vec![stat(0, 30), stat(1, 10)],
        };
        assert!((skewed.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn imbalance_of_empty_system_is_one() {
        let s = LbStats {
            npes: 4,
            chares: vec![],
        };
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn pe_loads_into_reuses_buffer() {
        let s = LbStats {
            npes: 3,
            chares: vec![stat(0, 10), stat(2, 30)],
        };
        let mut buf = vec![9.0; 7];
        s.pe_loads_into(&mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf, s.pe_loads());
    }

    fn cand(pe: Pe, seq: u32, load_ms: u64) -> LbChareStat {
        LbChareStat {
            id: ChareId {
                coll: CollectionId { creator: 0, seq },
                index: Index::from(pe as i32),
            },
            pe,
            load_ns: load_ms * 1_000_000,
            migratable: true,
        }
    }

    #[test]
    fn refine_limit_integer_math() {
        assert_eq!(refine_limit(1000, 4, 1050), 262);
        assert_eq!(refine_limit(0, 4, 1050), 0);
        assert_eq!(refine_limit(100, 0, 1050), 0);
        // Saturates instead of wrapping near u64::MAX totals.
        assert_eq!(refine_limit(u64::MAX, 1, 1050), u64::MAX);
    }

    #[test]
    fn refine_place_balanced_input_stays_put() {
        let mut acc = vec![(0, 0u64), (1, 0u64)];
        let cands = vec![cand(0, 0, 50), cand(1, 1, 50)];
        let limit = refine_limit(100_000_000, 2, REFINE_THRESHOLD_PERMILLE);
        let out = greedy_refine_place(&mut acc, cands, limit);
        assert!(out.moves.is_empty());
        assert!(out.leftover.is_empty());
        assert_eq!(acc[0].1, 50_000_000);
    }

    #[test]
    fn refine_place_moves_off_overloaded_pe() {
        // All load on PE 0; two PEs. avg=50ms, limit=52.5ms.
        let mut acc = vec![(0, 0u64), (1, 0u64)];
        let cands = vec![cand(0, 0, 50), cand(0, 1, 50)];
        let limit = refine_limit(100_000_000, 2, REFINE_THRESHOLD_PERMILLE);
        let out = greedy_refine_place(&mut acc, cands, limit);
        assert_eq!(out.moves.len(), 1);
        assert_eq!(out.moves[0].1, 0, "moved off its current PE");
        assert_eq!(out.moves[0].2, 1, "onto the idle PE");
        assert!(out.leftover.is_empty());
    }

    #[test]
    fn refine_place_is_input_order_independent() {
        let mut a1 = vec![(2, 10u64), (0, 500u64), (1, 0u64)];
        let mut a2 = vec![(0, 500u64), (1, 0u64), (2, 10u64)];
        let c1 = vec![cand(0, 0, 5), cand(0, 1, 3), cand(2, 2, 1)];
        let c2 = vec![cand(2, 2, 1), cand(0, 1, 3), cand(0, 0, 5)];
        let o1 = greedy_refine_place(&mut a1, c1, 3_000_000);
        let o2 = greedy_refine_place(&mut a2, c2, 3_000_000);
        assert_eq!(o1, o2);
        assert_eq!(a1, a2);
    }

    #[test]
    fn refine_place_spills_what_cannot_fit() {
        let mut acc = vec![(0, 0u64), (1, 0u64)];
        // One chare heavier than the limit and foreign to both acceptors.
        let cands = vec![cand(2, 0, 100)];
        let out = greedy_refine_place(&mut acc, cands, 10);
        assert!(out.moves.is_empty());
        assert_eq!(out.leftover.len(), 1);
        assert_eq!(out.leftover[0].pe, 2);
    }

    #[test]
    fn spill_cap_floors_at_leaves() {
        // A leaf (pe_count 1) must pass everything it has.
        assert!(spill_cap(100, 1) >= 100);
        assert!(spill_cap(3, 1) >= 3);
        // Dense subtree: proportional to chares per PE, not total chares.
        assert_eq!(spill_cap(1_000_000, 1_000), 2_000);
    }

    #[test]
    fn truncation_keeps_least_loaded_acceptors_and_heaviest_spill() {
        let mut acc = vec![(0, 30u64), (1, 10u64), (2, 20u64)];
        truncate_acceptors(&mut acc, 2);
        assert_eq!(acc, vec![(1, 10), (2, 20)]);
        let mut spill = vec![cand(0, 0, 1), cand(1, 1, 9), cand(2, 2, 5)];
        truncate_spill(&mut spill, 2);
        assert_eq!(spill.len(), 2);
        assert_eq!(spill[0].load_ns, 9_000_000);
        assert_eq!(spill[1].load_ns, 5_000_000);
    }

    #[test]
    fn tree_report_fold_accumulates() {
        let mut t = LbTreePe::default();
        t.fold(LbTreeReport {
            pe_count: 3,
            chare_count: 4,
            total_load_ns: 100,
            ordered: 2,
            acceptors: vec![(1, 10)],
            spill: vec![cand(1, 0, 1)],
        });
        t.fold(LbTreeReport {
            pe_count: 2,
            chare_count: 1,
            total_load_ns: 50,
            ordered: 0,
            acceptors: vec![(4, 0)],
            spill: vec![],
        });
        assert_eq!(t.children_seen, 2);
        assert_eq!(t.pe_count, 5);
        assert_eq!(t.chare_count, 5);
        assert_eq!(t.total_load_ns, 150);
        assert_eq!(t.ordered, 2);
        assert_eq!(t.acceptors.len(), 2);
        assert_eq!(t.spill.len(), 1);
        let cap = t.acceptors.capacity();
        t.reset();
        assert_eq!(t.acceptors.capacity(), cap, "reset keeps capacity");
        assert!(!t.polled && t.pe_count == 0);
    }

    #[test]
    fn lb_mode_tree_shape_matches_group_size() {
        let m = LbMode::Tree { group_size: 8 };
        let shape = m.tree_shape();
        assert_eq!(shape.arity, 8);
        assert_eq!(shape.cores_per_node, None);
        // group_size == npes degenerates to a flat tree: all PEs are
        // direct children of root 0 (the Central-equivalence shape).
        let flat = LbMode::Tree { group_size: 16 }.tree_shape();
        assert_eq!(flat.children(0, 0, 16).len(), 15);
    }
}
