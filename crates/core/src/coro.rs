//! Coroutines — threaded entry methods (paper §II-H).
//!
//! A threaded entry method runs on its own OS thread, but *never
//! concurrently* with its PE's scheduler: the chare is moved into the
//! coroutine on resume and moved back on every suspension, over a pair of
//! rendezvous channels. While the coroutine waits (on a future or a state
//! predicate) the scheduler holds the chare again and keeps delivering
//! ordinary entry methods to it — which is exactly what makes the CharmPy
//! pattern
//!
//! ```text
//! @threaded def work(self): ... self.wait('self.msg_count == n') ...
//! def recvData(self, data): self.msg_count += 1
//! ```
//!
//! expressible here with zero `unsafe` and no lock held across a
//! suspension.

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Once;

use crate::chare::{Chare, ChareBox};
use crate::ctx::{Ctx, CtxSeed, Op};
use crate::future::Future;
use crate::ids::{ChareId, FutureId};
use crate::msg::{Message, Payload};

/// Type-erased wait predicate over the chare state.
pub(crate) type WaitPred = Box<dyn Fn(&dyn Any) -> bool + Send>;

/// What a suspended coroutine is waiting for.
pub(crate) enum WaitKind {
    /// A value for this future.
    Future(FutureId),
    /// The chare state to satisfy this predicate (the `wait` construct).
    Pred(WaitPred),
}

impl std::fmt::Debug for WaitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitKind::Future(fid) => write!(f, "WaitKind::Future({}.{})", fid.pe, fid.seq),
            WaitKind::Pred(_) => write!(f, "WaitKind::Pred"),
        }
    }
}

/// Scheduler → coroutine control.
pub(crate) enum CoroInput {
    /// First handoff: run the body with this chare.
    Start {
        chare: Box<dyn ChareBox>,
        now_ns: u64,
        reply_to: Option<FutureId>,
    },
    /// Wake a suspended coroutine (with the awaited future's value, if any).
    Resume {
        chare: Box<dyn ChareBox>,
        value: Option<Payload>,
        now_ns: u64,
    },
    /// The runtime is exiting; unwind quietly.
    #[allow(dead_code)]
    Shutdown,
}

/// Coroutine → scheduler control. Both variants return the chare and flush
/// the coroutine's buffered ops. `work_ns` is the user-code time of the
/// finished segment, measured *inside* the coroutine so the OS-thread
/// rendezvous cost is excluded (a real Charm++ user-level context switch is
/// ~100 ns; metering our mpsc handshake would grossly overcharge).
pub(crate) enum CoroYield {
    /// Suspended; resume when `wait` is satisfied.
    Blocked {
        chare: Box<dyn ChareBox>,
        ops: Vec<Op>,
        wait: WaitKind,
        work_ns: u64,
    },
    /// The body returned.
    Done {
        chare: Box<dyn ChareBox>,
        ops: Vec<Op>,
        work_ns: u64,
    },
}

/// The coroutine-thread end of the rendezvous.
pub(crate) struct CoroSide {
    pub rx: Receiver<CoroInput>,
    pub tx: Sender<CoroYield>,
    pub seed: CtxSeed,
    pub chare_id: ChareId,
}

/// Panic payload used to unwind coroutines on runtime shutdown.
struct CoroShutdown;

/// Install (once) a panic hook that keeps shutdown unwinds silent while
/// leaving real panics loud.
pub(crate) fn install_quiet_shutdown_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CoroShutdown>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

fn shutdown() -> ! {
    std::panic::panic_any(CoroShutdown)
}

/// The handle a threaded entry method runs with: access to the chare
/// (`this`), a deferred-op [`Ctx`], and the two suspension primitives.
pub struct Co<T: Chare> {
    pub(crate) ctx: Ctx,
    tx: Sender<CoroYield>,
    rx: Receiver<CoroInput>,
    slot: Option<Box<dyn ChareBox>>,
    segment_start: std::time::Instant,
    _ph: PhantomData<fn() -> T>,
}

impl<T: Chare> Co<T> {
    /// The runtime context (sends, creations, contribute, …).
    pub fn ctx(&mut self) -> &mut Ctx {
        &mut self.ctx
    }

    /// Mutable access to the chare's state.
    pub fn this(&mut self) -> &mut T {
        self.slot
            .as_mut()
            .expect("chare absent (coroutine internal invariant)")
            .any_mut()
            .downcast_mut::<T>()
            .expect("coroutine launched on a chare of a different type")
    }

    /// Shared access to the chare's state.
    pub fn this_ref(&self) -> &T {
        self.slot
            .as_ref()
            .expect("chare absent (coroutine internal invariant)")
            .any_ref()
            .downcast_ref::<T>()
            .expect("coroutine launched on a chare of a different type")
    }

    fn suspend(&mut self, wait: WaitKind) -> Option<Payload> {
        let chare = self
            .slot
            .take()
            .expect("nested suspension (coroutine internal invariant)");
        let ops = std::mem::take(&mut self.ctx.ops);
        let work_ns = self.segment_start.elapsed().as_nanos() as u64;
        if self
            .tx
            .send(CoroYield::Blocked {
                chare,
                ops,
                wait,
                work_ns,
            })
            .is_err()
        {
            shutdown();
        }
        match self.rx.recv() {
            Ok(CoroInput::Resume {
                chare,
                value,
                now_ns,
            }) => {
                self.slot = Some(chare);
                self.ctx.now_ns = now_ns;
                self.segment_start = std::time::Instant::now();
                value
            }
            _ => shutdown(),
        }
    }

    /// Block this coroutine until `future` has a value, and return it
    /// (`future.get()`). Only this coroutine suspends; the PE continues
    /// scheduling other work, including other entry methods of this chare.
    ///
    /// # Panics
    /// Panics if called on a PE other than the future's creating PE.
    pub fn get<V: Message>(&mut self, future: &Future<V>) -> V {
        assert_eq!(
            future.id().pe as usize,
            self.ctx.my_pe(),
            "futures must be awaited on the PE that created them"
        );
        let payload = self
            .suspend(WaitKind::Future(future.id()))
            .expect("future resumed without a value");
        payload.take::<V>(self.ctx.seed.codec)
    }

    /// Suspend until the chare's state satisfies `pred` — the `self.wait`
    /// construct (§II-H2). The predicate is re-evaluated by the scheduler
    /// after every message delivered to this chare.
    pub fn wait(&mut self, pred: impl Fn(&T) -> bool + Send + 'static) {
        if pred(self.this_ref()) {
            return;
        }
        let wrapped: WaitPred = Box::new(move |any| {
            pred(
                any.downcast_ref::<T>()
                    .expect("wait predicate evaluated on a chare of a different type"),
            )
        });
        self.suspend(WaitKind::Pred(wrapped));
    }
}

/// Body of every coroutine thread: receive the chare, run the user code,
/// hand everything back. Real panics propagate (the scheduler turns the
/// closed channel into a loud error); shutdown unwinds are silent.
pub(crate) fn run_coroutine<T: Chare>(side: CoroSide, body: impl FnOnce(&mut Co<T>)) {
    install_quiet_shutdown_hook();
    let (chare, now_ns, reply_to) = match side.rx.recv() {
        Ok(CoroInput::Start {
            chare,
            now_ns,
            reply_to,
        }) => (chare, now_ns, reply_to),
        _ => return,
    };
    let mut ctx = Ctx::new(side.seed, now_ns, Some(side.chare_id));
    ctx.reply_to = reply_to;
    let mut co = Co::<T> {
        ctx,
        tx: side.tx,
        rx: side.rx,
        slot: Some(chare),
        segment_start: std::time::Instant::now(),
        _ph: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| body(&mut co)));
    match result {
        Ok(()) => {
            let chare = co
                .slot
                .take()
                .expect("coroutine finished without its chare");
            let ops = std::mem::take(&mut co.ctx.ops);
            let work_ns = co.segment_start.elapsed().as_nanos() as u64;
            let _ = co.tx.send(CoroYield::Done {
                chare,
                ops,
                work_ns,
            });
        }
        Err(payload) => {
            if payload.downcast_ref::<CoroShutdown>().is_none() {
                // A real application panic: re-raise so the thread dies and
                // the scheduler (blocked on our channel) reports it.
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Scheduler-side handle to a coroutine thread.
pub(crate) struct CoroHandle {
    pub tx: Sender<CoroInput>,
    pub rx: Receiver<CoroYield>,
    pub join: Option<std::thread::JoinHandle<()>>,
    pub chare: ChareId,
    /// Present while the coroutine is suspended.
    pub wait: Option<WaitKind>,
}
