//! Collections of chares (paper §II-C, §II-G): groups (one member per PE),
//! dense N-dimensional arrays, sparse arrays with dynamic insertion, and
//! singleton chares — all described by a [`CollSpec`] replicated to every
//! PE at creation time.
//!
//! Unlike Charm++ (and like CharmPy), a chare type is *not* tied to a
//! collection kind at declaration: the same `Chare` impl can be used for a
//! singleton, a group, and arrays of any dimensionality.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::ids::{ChareTypeId, CollectionId, Index, Pe};

/// What shape of collection this is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollKind {
    /// A single chare living on one PE.
    Singleton {
        /// The PE it was created on (also its home).
        pe: Pe,
    },
    /// One member per PE, indexed by PE number.
    Group,
    /// Dense N-D array: one member per index in the box `[0,dims_i)`.
    Dense {
        /// Extent in each dimension.
        dims: Vec<i32>,
    },
    /// Sparse array: members inserted dynamically (`ckInsert`).
    Sparse,
}

/// How array elements map to PEs — the `ArrayMap` mechanism (§II-G1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Contiguous blocks of the (row-major) index space per PE.
    Block,
    /// Row-major index order dealt round-robin over PEs.
    RoundRobin,
    /// Placement by stable hash of the index.
    Hash,
    /// A user placement function registered on the runtime builder, by id
    /// (the analog of a custom `ArrayMap` chare).
    Custom(u32),
}

/// Signature of a custom placement function: `(index, num_pes) -> pe`.
pub type PlacementFn = dyn Fn(&Index, usize) -> Pe + Send + Sync;

/// Registry of custom placement functions (ArrayMaps).
#[derive(Default, Clone)]
pub struct Placements {
    fns: Vec<Arc<PlacementFn>>,
}

impl Placements {
    /// Register a placement function, returning the handle to pass at array
    /// creation.
    pub fn register(
        &mut self,
        f: impl Fn(&Index, usize) -> Pe + Send + Sync + 'static,
    ) -> Placement {
        let id = self.fns.len() as u32;
        self.fns.push(Arc::new(f));
        Placement::Custom(id)
    }

    pub(crate) fn get(&self, id: u32) -> &PlacementFn {
        &**self
            .fns
            .get(id as usize)
            .unwrap_or_else(|| panic!("custom placement {id} not registered"))
    }
}

/// Collection metadata replicated to every PE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollSpec {
    /// The collection's id.
    pub id: CollectionId,
    /// Registered chare type of the members.
    pub ctype: ChareTypeId,
    /// Shape of the collection.
    pub kind: CollKind,
    /// Element→PE mapping (ignored for groups/singletons).
    pub placement: Placement,
    /// Whether members participate in at-sync load balancing.
    pub use_lb: bool,
}

impl CollSpec {
    /// Row-major enumeration of all indices of a dense array.
    pub fn dense_indices(dims: &[i32]) -> impl Iterator<Item = Index> + '_ {
        let total: i64 = dims.iter().map(|&d| d.max(0) as i64).product();
        (0..total).map(move |mut lin| {
            let mut coords = [0i32; crate::ids::MAX_DIMS];
            // Row-major: last dimension varies fastest.
            for i in (0..dims.len()).rev() {
                let d = dims[i] as i64;
                coords[i] = (lin % d) as i32;
                lin /= d;
            }
            Index::new(&coords[..dims.len()])
        })
    }

    /// Total member count of a dense array.
    pub fn dense_len(dims: &[i32]) -> u64 {
        dims.iter().map(|&d| d.max(0) as u64).product()
    }

    /// The index at row-major linear position `lin` — the inverse of
    /// [`CollSpec::linear`]. Lets placement fast paths enumerate only a
    /// PE's own linear range instead of walking the whole index space.
    pub fn dense_index_at(dims: &[i32], mut lin: u64) -> Index {
        let mut coords = [0i32; crate::ids::MAX_DIMS];
        for i in (0..dims.len()).rev() {
            let d = dims[i].max(1) as u64;
            coords[i] = (lin % d) as i32;
            lin /= d;
        }
        Index::new(&coords[..dims.len()])
    }

    /// The contiguous linear range `[lo, hi)` of a dense array that
    /// [`Placement::Block`] assigns to `pe` — closed form, so creation
    /// does not have to test every index in the array against `place()`.
    /// `place` maps `lin → (lin · npes) / total`, so PE `p` owns
    /// `lin ∈ [ceil(p · total / npes), ceil((p+1) · total / npes))`.
    pub fn block_range(dims: &[i32], pe: Pe, npes: usize) -> (u64, u64) {
        let total = Self::dense_len(dims);
        let n = npes as u64;
        let lo = (pe as u64 * total).div_ceil(n);
        let hi = ((pe as u64 + 1) * total).div_ceil(n);
        (lo, hi.min(total))
    }

    /// Per-PE member counts a dense array's placement produces, in closed
    /// form where the policy allows (`Block`, `RoundRobin`) — O(npes)
    /// instead of the O(members) enumeration that `Hash`/`Custom`
    /// placements require. Returns `false` when no closed form exists
    /// (the caller falls back to enumeration).
    pub fn dense_counts_closed(&self, counts: &mut [u64], npes: usize) -> bool {
        let CollKind::Dense { dims } = &self.kind else {
            return false;
        };
        let total = Self::dense_len(dims);
        match self.placement {
            Placement::Block => {
                for (pe, c) in counts.iter_mut().enumerate().take(npes) {
                    let (lo, hi) = Self::block_range(dims, pe, npes);
                    *c += hi - lo;
                }
                true
            }
            Placement::RoundRobin => {
                let n = npes as u64;
                for (pe, c) in counts.iter_mut().enumerate().take(npes) {
                    *c += total / n + u64::from((pe as u64) < total % n);
                }
                true
            }
            Placement::Hash | Placement::Custom(_) => false,
        }
    }

    /// Row-major linear position of `index` within `dims`.
    pub fn linear(dims: &[i32], index: &Index) -> u64 {
        let mut lin: u64 = 0;
        for (i, &c) in index.coords().iter().enumerate() {
            lin = lin * dims[i] as u64 + c as u64;
        }
        lin
    }

    /// The *initial* PE an element is placed on, per the placement policy.
    ///
    /// This is also an element's "home" for groups and singletons; dense and
    /// sparse array homes use [`CollSpec::home_pe`] (hash-based) so any PE
    /// can compute them without knowing the placement function.
    pub fn place(&self, index: &Index, npes: usize, placements: &Placements) -> Pe {
        match &self.kind {
            CollKind::Singleton { pe } => *pe,
            CollKind::Group => index.first() as usize,
            CollKind::Dense { dims } => match self.placement {
                Placement::Block => {
                    let total = Self::dense_len(dims).max(1);
                    let lin = Self::linear(dims, index);
                    // Even contiguous blocks, remainder spread over the
                    // first PEs (standard block distribution).
                    ((lin * npes as u64) / total) as usize
                }
                Placement::RoundRobin => (Self::linear(dims, index) % npes as u64) as usize,
                Placement::Hash => (index.stable_hash() % npes as u64) as usize,
                Placement::Custom(id) => placements.get(id)(index, npes) % npes,
            },
            CollKind::Sparse => match self.placement {
                Placement::Custom(id) => placements.get(id)(index, npes) % npes,
                _ => (index.stable_hash() % npes as u64) as usize,
            },
        }
    }

    /// The home PE responsible for tracking an element's location.
    pub fn home_pe(&self, index: &Index, npes: usize) -> Pe {
        match &self.kind {
            CollKind::Singleton { pe } => *pe,
            CollKind::Group => index.first() as usize,
            CollKind::Dense { .. } | CollKind::Sparse => {
                (index.stable_hash() % npes as u64) as usize
            }
        }
    }
}

/// Per-PE live state for one collection.
pub struct CollState {
    /// The replicated spec.
    pub spec: CollSpec,
    /// Members currently hosted by this PE.
    pub local_members: u64,
    /// Members hosted by this PE's reduction-tree subtree (this PE
    /// included). Maintained at creation, insertion and LB migration; the
    /// reduction protocol's completion counts rest on it.
    pub subtree_members: u64,
    /// Whether `done_inserting` was seen (sparse arrays).
    pub done_inserting: bool,
    /// Next broadcast-delivery bookkeeping could live here later.
    pub red_broadcast_seen: u64,
}

/// Per-PE table of known collections.
pub type CollTable = HashMap<CollectionId, CollState>;

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_spec(dims: Vec<i32>, placement: Placement) -> CollSpec {
        CollSpec {
            id: CollectionId { creator: 0, seq: 0 },
            ctype: ChareTypeId(0),
            kind: CollKind::Dense { dims },
            placement,
            use_lb: false,
        }
    }

    #[test]
    fn dense_enumeration_row_major() {
        let idx: Vec<Index> = CollSpec::dense_indices(&[2, 3]).collect();
        assert_eq!(idx.len(), 6);
        assert_eq!(idx[0], Index::from((0, 0)));
        assert_eq!(idx[1], Index::from((0, 1)));
        assert_eq!(idx[3], Index::from((1, 0)));
        assert_eq!(idx[5], Index::from((1, 2)));
    }

    #[test]
    fn linear_inverts_enumeration() {
        let dims = [3, 4, 5];
        for (i, ix) in CollSpec::dense_indices(&dims).enumerate() {
            assert_eq!(CollSpec::linear(&dims, &ix), i as u64);
        }
    }

    #[test]
    fn block_placement_is_contiguous_and_balanced() {
        let spec = dense_spec(vec![8], Placement::Block);
        let pls = Placements::default();
        let pes: Vec<Pe> = (0..8)
            .map(|i| spec.place(&Index::from(i), 4, &pls))
            .collect();
        assert_eq!(pes, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn block_placement_handles_remainders() {
        let spec = dense_spec(vec![7], Placement::Block);
        let pls = Placements::default();
        let mut counts = [0usize; 3];
        for i in 0..7 {
            let pe = spec.place(&Index::from(i), 3, &pls);
            counts[pe] += 1;
        }
        // 7 over 3 PEs: every PE gets 2 or 3.
        assert!(counts.iter().all(|&c| c == 2 || c == 3), "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 7);
    }

    #[test]
    fn round_robin_placement() {
        let spec = dense_spec(vec![6], Placement::RoundRobin);
        let pls = Placements::default();
        let pes: Vec<Pe> = (0..6)
            .map(|i| spec.place(&Index::from(i), 3, &pls))
            .collect();
        assert_eq!(pes, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn custom_placement_like_arraymap() {
        // The paper's MyMap example: procNum = index[0] % 20.
        let mut pls = Placements::default();
        let placement = pls.register(|ix, npes| (ix.first() as usize % 20) % npes);
        let spec = dense_spec(vec![40], placement);
        for i in 0..40 {
            let pe = spec.place(&Index::from(i), 32, &pls);
            assert_eq!(pe, (i as usize % 20) % 32);
        }
    }

    #[test]
    fn group_home_and_place_is_pe() {
        let spec = CollSpec {
            id: CollectionId { creator: 1, seq: 2 },
            ctype: ChareTypeId(0),
            kind: CollKind::Group,
            placement: Placement::Hash,
            use_lb: false,
        };
        let pls = Placements::default();
        for pe in 0..8usize {
            assert_eq!(spec.place(&Index::pe(pe), 8, &pls), pe);
            assert_eq!(spec.home_pe(&Index::pe(pe), 8), pe);
        }
    }

    #[test]
    fn dense_index_at_inverts_linear() {
        let dims = [3, 4, 5];
        for (i, ix) in CollSpec::dense_indices(&dims).enumerate() {
            assert_eq!(CollSpec::dense_index_at(&dims, i as u64), ix);
        }
    }

    #[test]
    fn closed_form_counts_match_enumeration() {
        let pls = Placements::default();
        for placement in [Placement::Block, Placement::RoundRobin] {
            for (dims, npes) in [
                (vec![8], 4usize),
                (vec![7], 3),
                (vec![10, 10], 7),
                (vec![3], 5), // fewer members than PEs
                (vec![4, 3, 2], 5),
            ] {
                let spec = dense_spec(dims.clone(), placement);
                let mut expected = vec![0u64; npes];
                for ix in CollSpec::dense_indices(&dims) {
                    expected[spec.place(&ix, npes, &pls)] += 1;
                }
                let mut got = vec![0u64; npes];
                assert!(spec.dense_counts_closed(&mut got, npes));
                assert_eq!(got, expected, "{placement:?} {dims:?} over {npes}");
            }
        }
        // No closed form for hash placement: caller must enumerate.
        let spec = dense_spec(vec![8], Placement::Hash);
        let mut got = vec![0u64; 4];
        assert!(!spec.dense_counts_closed(&mut got, 4));
    }

    #[test]
    fn block_range_partitions_index_space() {
        for (dims, npes) in [(vec![8], 4usize), (vec![7], 3), (vec![100], 7)] {
            let total = CollSpec::dense_len(&dims);
            let mut next = 0u64;
            for pe in 0..npes {
                let (lo, hi) = CollSpec::block_range(&dims, pe, npes);
                assert_eq!(lo, next, "ranges are contiguous");
                assert!(hi >= lo);
                next = hi;
            }
            assert_eq!(next, total, "ranges cover the space");
        }
    }

    #[test]
    fn home_pe_is_stable_and_in_range() {
        let spec = dense_spec(vec![10, 10], Placement::Block);
        for ix in CollSpec::dense_indices(&[10, 10]) {
            let h = spec.home_pe(&ix, 7);
            assert!(h < 7);
            assert_eq!(h, spec.home_pe(&ix, 7));
        }
    }
}
