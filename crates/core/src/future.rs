//! Distributed futures (paper §II-H3).
//!
//! A future is created on one PE, can be shipped to any chare in a message,
//! and completed from anywhere with `send`. The creator retrieves the value
//! with `Co::get`, which suspends only the calling coroutine — the PE keeps
//! scheduling other work, exactly as in CharmPy.

use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::ids::{CoroId, FutureId};
use crate::msg::{Message, Payload};

/// A typed handle to a value that will arrive later.
///
/// Handles are small, `Copy`, and serializable, so they can be passed to
/// other chares (e.g. the parallel-map pool sends the job's result future
/// to the master). The value must be retrieved on the creating PE.
pub struct Future<V: Message> {
    pub(crate) id: FutureId,
    _ph: PhantomData<fn() -> V>,
}

impl<V: Message> Future<V> {
    pub(crate) fn new(id: FutureId) -> Self {
        Future {
            id,
            _ph: PhantomData,
        }
    }

    /// The raw id (useful as a reduction target).
    pub fn id(&self) -> FutureId {
        self.id
    }

    /// Rebuild a handle from a raw id. The caller asserts the value type:
    /// a mismatch surfaces as a decode/downcast panic at `get`.
    pub fn from_raw(id: FutureId) -> Future<V> {
        Future::new(id)
    }
}

impl<V: Message> Clone for Future<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V: Message> Copy for Future<V> {}

impl<V: Message> fmt::Debug for Future<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Future<{}>({}.{})",
            std::any::type_name::<V>(),
            self.id.pe,
            self.id.seq
        )
    }
}

impl<V: Message> Serialize for Future<V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.id.serialize(s)
    }
}

impl<'de, V: Message> Deserialize<'de> for Future<V> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Future::new(FutureId::deserialize(d)?))
    }
}

/// Per-PE state of one future.
pub enum FutState {
    /// Value arrived before anyone asked.
    Ready(Payload),
    /// A coroutine is suspended waiting for it.
    Waiting(CoroId),
    /// Created, no value, nobody waiting yet.
    Empty,
}

/// Per-PE future table.
pub type FutTable = HashMap<FutureId, FutState>;
