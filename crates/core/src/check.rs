//! # Systematic schedule exploration (`Runtime::check`, `--features analyze`)
//!
//! The controlled-scheduling driver behind [`Runtime::check`] and
//! [`Runtime::replay_schedule`] (DESIGN.md §11): a variant of the sim event
//! loop where the *explorer* — `charm-check`'s stateless DPOR engine — picks
//! which channel's head message is delivered next, instead of the
//! `(arrival time, ship seq)` heap order. Per-channel FIFO is preserved
//! (the ordering the threads backend and real networks guarantee); every
//! cross-channel interleaving is schedulable.
//!
//! The transition system:
//!
//! * one **transition** = delivering the head of channel `(src, dst)` and
//!   running its handler to completion (handlers are atomic);
//! * the **default extension** picks the channel whose head has the
//!   smallest modeled `(arrival, ship seq)` — exactly the uncontrolled sim
//!   `EventQueue` order, so an empty schedule replays a plain `run()`;
//! * the **independence relation** comes from the analyze Detector's vector
//!   clocks, snapshotted after each handler: the post-handler clock is both
//!   the delivery event's clock and the send clock of everything the
//!   handler emitted. Clocks are tagged with the recovery epoch so a
//!   restart acts as a happens-before barrier.
//!
//! Composition: fault injection (`InjectFault::{DuplicateNth, DropNth}`
//! at ship time, `KillPe` + restart recovery at delivery time), TRAM
//! aggregation (scheduler-idle flush when every channel drains), fast
//! paths and FT checkpointing all run armed under exploration. Metering is
//! forced off (`meter_compute(false)`) so an execution is a pure function
//! of its delivery order — the property that makes replay bit-identical.
//!
//! The schedule-permutation harness (`Runtime::permute_schedule`,
//! `charm_sim::PermuteSchedule`) is the sampling mode of this same
//! scheduling hook: it jitters the default priorities instead of
//! enumerating them. Use permutation for cheap smoke coverage at scale,
//! `check` for exhaustive coverage at small configs.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use charm_check::{Chan, Execution, ExploreCfg, Schedule, StepInfo};
use charm_sim::{MachineModel, VTime};
use charm_trace::PeTrace;

use crate::analyze::{FaultProbe, InjectFault};
use crate::chare::Registry;
use crate::checkpoint::{self, Store};
use crate::collections::Placements;
use crate::coro::{run_coroutine, Co};
use crate::ids::Pe;
use crate::msg::{EnvKind, Envelope};
use crate::pe::{CkptStore, CoroLauncher, PeState, RestoreFrom, SchedCfg};
use crate::reduction::CustomReducers;
use crate::runtime::{Main, RunReport};

/// Recovery epochs are folded into every reported vector-clock component
/// (`epoch << SHIFT | clock`), making a restart a happens-before barrier:
/// a pre-recovery delivery always happens-before a post-recovery send, so
/// DPOR never tries to commute across the restart.
const EPOCH_TAG_SHIFT: u32 = 48;

/// Verdict oracle evaluated after each non-failing execution: return
/// `Some(description)` to flag the run as a counterexample (e.g. a result
/// that differs from the expected value regardless of schedule).
pub type CheckOracle = Arc<dyn Fn(&RunReport) -> Option<String> + Send + Sync>;

/// Configuration for [`Runtime::check`].
///
/// [`Runtime::check`]: crate::runtime::Runtime::check
#[derive(Clone)]
pub struct CheckCfg {
    /// Stop (and report `truncated`) after this many executions; 0 = no cap.
    pub max_executions: usize,
    /// Maximum total deviation from the default schedule (sum of chosen
    /// enabled-list indices); `None` = unbounded. The graceful-degradation
    /// knob for configs too large to exhaust.
    pub delay_bound: Option<u64>,
    /// DPOR with sleep sets (default) vs naive full enumeration. Naive
    /// exists so state-space-size tables can quote both numbers.
    pub dpor: bool,
    /// Delta-debug a failing schedule down to a minimal decision sequence.
    pub shrink: bool,
    /// Write the (shrunk) counterexample schedule to this path.
    pub artifact: Option<PathBuf>,
    /// Per-execution verdict oracle (see [`CheckOracle`]).
    pub oracle: Option<CheckOracle>,
}

impl Default for CheckCfg {
    fn default() -> CheckCfg {
        CheckCfg {
            max_executions: 10_000,
            delay_bound: None,
            dpor: true,
            shrink: true,
            artifact: None,
            oracle: None,
        }
    }
}

impl std::fmt::Debug for CheckCfg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckCfg")
            .field("max_executions", &self.max_executions)
            .field("delay_bound", &self.delay_bound)
            .field("dpor", &self.dpor)
            .field("shrink", &self.shrink)
            .field("artifact", &self.artifact)
            .field("oracle", &self.oracle.is_some())
            .finish()
    }
}

/// A failing schedule found by [`Runtime::check`], minimized when
/// shrinking is enabled.
///
/// [`Runtime::check`]: crate::runtime::Runtime::check
#[derive(Debug, Clone)]
pub struct CheckCounterexample {
    /// What went wrong (detector finding, panic, run error, or oracle).
    pub failure: String,
    /// Scheduling decisions in the minimized reproducing schedule.
    pub decisions: usize,
    /// Decision count of the schedule as first discovered.
    pub original_len: usize,
    /// The reproducing schedule (replay via `Runtime::replay_schedule`).
    pub schedule: Schedule,
    /// Where the replay artifact was written, when `CheckCfg::artifact`
    /// was set and the write succeeded.
    pub artifact: Option<PathBuf>,
}

/// Result of a [`Runtime::check`] exploration.
///
/// [`Runtime::check`]: crate::runtime::Runtime::check
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Executions visited (the shrinker's extra runs not included).
    pub executions: u64,
    /// Distinct happens-before (Mazurkiewicz) classes among them.
    pub equivalence_classes: usize,
    /// True iff `max_executions` or `delay_bound` cut exploration short.
    /// `false` means the schedule space was exhausted.
    pub truncated: bool,
    /// First failure found; exploration stops at the first one.
    pub counterexample: Option<CheckCounterexample>,
}

/// Result of replaying one schedule artifact.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The failure the schedule reproduces, if any.
    pub failure: Option<String>,
    /// Prescribed decisions in the artifact.
    pub decisions: usize,
    /// Deliveries actually executed (prescribed prefix + default extension).
    pub steps: usize,
    /// Order-sensitive digest of the full delivery sequence and outcome.
    /// Two replays of one artifact must produce identical digests — the
    /// bit-identity contract of deterministic replay.
    pub digest: u64,
}

/// Everything [`Runtime`] hands the controlled driver: the same pieces the
/// restart supervisor's `Launch` carries, plus a *re-runnable* entry (each
/// execution restarts the program from scratch) and a per-execution
/// `SchedCfg` factory so every run gets a fresh findings probe.
///
/// [`Runtime`]: crate::runtime::Runtime
pub(crate) struct Driver {
    pub(crate) npes: usize,
    pub(crate) model: MachineModel,
    pub(crate) registry: Arc<Registry>,
    pub(crate) placements: Arc<Placements>,
    pub(crate) reducers: Arc<CustomReducers>,
    pub(crate) mk_cfg: MkCfg,
    pub(crate) auto: Option<(u64, Store)>,
    pub(crate) recover: Option<Arc<dyn Fn(&mut Co<Main>) + Send + Sync>>,
    pub(crate) max_restarts: u64,
    pub(crate) inject: Option<InjectFault>,
    pub(crate) entry: Arc<dyn Fn(&mut Co<Main>) + Send + Sync>,
}

/// `(epoch, restore, ckpt_seq_start, probe) -> SchedCfg` — built by
/// `Runtime::into_check_driver`, which owns the private builder fields.
pub(crate) type MkCfg =
    Box<dyn Fn(u64, Option<RestoreFrom>, u64, FaultProbe) -> Arc<SchedCfg> + Send + Sync>;

impl Driver {
    fn mk_entry(&self) -> CoroLauncher {
        let f = Arc::clone(&self.entry);
        Box::new(move |side| run_coroutine::<Main>(side, move |co: &mut Co<Main>| f(co)))
    }

    fn recovery_entry(&self) -> Option<CoroLauncher> {
        let f = Arc::clone(self.recover.as_ref()?);
        Some(Box::new(move |side| {
            run_coroutine::<Main>(side, move |co: &mut Co<Main>| f(co))
        }))
    }

    fn recovery_armed(&self) -> bool {
        self.auto.is_some() && self.recover.is_some()
    }

    /// Newest complete checkpoint generation after a failure — the
    /// controlled-loop mirror of the restart supervisor's source lookup.
    fn recovery_source(&self, stores: &[Option<CkptStore>]) -> Result<(u64, RestoreFrom), String> {
        let store = match &self.auto {
            Some((_, s)) => s,
            None => return Err("automatic checkpointing is not armed".into()),
        };
        match store {
            Store::Disk(root) => checkpoint::latest_complete_dir(root)
                .map(|(epoch, dir)| (epoch, RestoreFrom::Dir(dir)))
                .map_err(|e| e.to_string()),
            Store::Memory => {
                let mut epochs: Vec<u64> =
                    stores.iter().flatten().flat_map(|s| s.epochs()).collect();
                epochs.sort_unstable();
                epochs.dedup();
                for &epoch in epochs.iter().rev() {
                    if let Some(files) = crate::runtime::assemble_images(stores, self.npes, epoch) {
                        return Ok((epoch, RestoreFrom::Images(files)));
                    }
                }
                Err("no complete in-memory checkpoint generation survives the failure".into())
            }
        }
    }
}

/// One in-flight message on a channel queue.
struct Pending {
    env: Envelope,
    /// Modeled arrival time (ns) — the *default priority*, not a constraint:
    /// the explorer may deliver in any cross-channel order.
    arrive: u64,
    /// Ship order tie-break, mirroring the `EventQueue` sequence number.
    ship_seq: u64,
    /// Sender's epoch-tagged vector clock at ship time.
    send_clock: Vec<u64>,
}

/// Tag each clock component with the recovery epoch (see
/// [`EPOCH_TAG_SHIFT`]).
fn tag_clock(epoch: u64, clock: &[u64]) -> Vec<u64> {
    clock
        .iter()
        .map(|c| (epoch << EPOCH_TAG_SHIFT) | c)
        .collect()
}

/// Run the explorer over the program behind `driver`.
pub(crate) fn run_check(driver: Driver, cfg: CheckCfg) -> CheckReport {
    let explore_cfg = ExploreCfg {
        max_executions: cfg.max_executions,
        delay_bound: cfg.delay_bound,
        dpor: cfg.dpor,
        shrink: cfg.shrink,
    };
    let oracle = cfg.oracle.clone();
    let report = charm_check::explore(&explore_cfg, |prefix| {
        run_once(&driver, prefix, oracle.as_ref())
    });
    let counterexample = report.counterexample.map(|cx| {
        let schedule = Schedule {
            npes: driver.npes,
            note: cx.failure.clone(),
            choices: cx.schedule,
        };
        let artifact = cfg.artifact.as_ref().and_then(|path| {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            schedule.save(path).ok().map(|_| path.clone())
        });
        CheckCounterexample {
            failure: cx.failure,
            decisions: schedule.choices.len(),
            original_len: cx.original_len,
            schedule,
            artifact,
        }
    });
    CheckReport {
        executions: report.executions,
        equivalence_classes: report.equivalence_classes,
        truncated: report.truncated,
        counterexample,
    }
}

/// Replay one schedule artifact, deterministically.
pub(crate) fn run_replay(driver: Driver, schedule: &Schedule) -> ReplayOutcome {
    let exec = if schedule.npes != driver.npes {
        Execution {
            steps: Vec::new(),
            failure: Some(format!(
                "schedule was recorded for {} PEs but the runtime has {}",
                schedule.npes, driver.npes
            )),
        }
    } else {
        run_once(&driver, &schedule.choices, None)
    };
    // FNV-1a over the delivery sequence and the outcome text: the
    // bit-identity digest two replays of one artifact must agree on.
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut digest = FNV_OFFSET;
    let mut eat = |byte: u8| digest = (digest ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    for s in &exec.steps {
        for b in s
            .chan
            .0
            .to_le_bytes()
            .into_iter()
            .chain(s.chan.1.to_le_bytes())
        {
            eat(b);
        }
        for b in &s.clock_after {
            for byte in b.to_le_bytes() {
                eat(byte);
            }
        }
    }
    for b in exec.failure.as_deref().unwrap_or("ok").bytes() {
        eat(b);
    }
    ReplayOutcome {
        failure: exec.failure,
        decisions: schedule.choices.len(),
        steps: exec.steps.len(),
        digest,
    }
}

/// Execute the program once under a prescribed schedule prefix, catching
/// panics (a panic *is* a counterexample) and classifying the outcome.
fn run_once(driver: &Driver, prefix: &[Chan], oracle: Option<&CheckOracle>) -> Execution {
    let mut steps: Vec<StepInfo> = Vec::new();
    let probe = FaultProbe::new();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        controlled_run(driver, prefix, &mut steps, &probe)
    }));
    let failure = match outcome {
        Ok(Ok(report)) => {
            let findings = probe.findings();
            if let Some(f) = findings.first() {
                Some(format!("detector: {f}"))
            } else {
                oracle
                    .and_then(|o| o(&report))
                    .map(|msg| format!("oracle: {msg}"))
            }
        }
        Ok(Err(e)) => Some(format!("run error: {e}")),
        Err(p) => Some(format!("panic: {}", crate::runtime::panic_msg(p))),
    };
    Execution { steps, failure }
}

/// Ship one drained outbox into the channel queues: fault injection, delay
/// model, per-channel arrival clamp — the controlled-loop port of the sim
/// driver's `ship_outbox`.
#[allow(clippy::too_many_arguments)]
fn ship(
    src: Pe,
    now_ns: u64,
    outbox: Vec<(Pe, Envelope)>,
    send_clock: &[u64],
    model: &MachineModel,
    pending: &mut BTreeMap<Chan, VecDeque<Pending>>,
    ship_seq: &mut u64,
    last_arrival: &mut HashMap<(Pe, Pe), u64>,
    inject_state: &mut Option<(InjectFault, u64)>,
) {
    for (dst, env) in outbox {
        let mut duplicate: Option<Envelope> = None;
        if let Some((fault, count)) = inject_state {
            // The mutation build widens the injector to checkpoint acks
            // (see `EnvKind::try_clone`), restoring the pre-fix reachability
            // of the stray-CkptAck panic for the mutation smoke test.
            let injectable = env.kind.counts_for_qd()
                || (cfg!(feature = "mutation-ckptack")
                    && matches!(env.kind, EnvKind::CkptAck { .. }));
            if injectable {
                let n = *count;
                *count += 1;
                match *fault {
                    InjectFault::DropNth(k) if k == n => continue,
                    InjectFault::DuplicateNth(k) if k == n => {
                        duplicate = env.try_clone();
                    }
                    _ => {}
                }
            }
        }
        let delay = model.msg_delay(src, dst, env.kind.size_hint());
        let mut at = (VTime::from_nanos(now_ns) + delay).as_nanos();
        let last = last_arrival.entry((src, dst)).or_insert(0);
        if at <= *last {
            at = *last + 1;
        }
        *last = at;
        let q = pending.entry((src, dst)).or_default();
        q.push_back(Pending {
            env,
            arrive: at,
            ship_seq: *ship_seq,
            // analyze: allow(payload-copy, "vector-clock u64 snapshot, not a wire payload")
            send_clock: send_clock.to_vec(),
        });
        *ship_seq += 1;
        if let Some(dup) = duplicate {
            let at2 = at + 1;
            last_arrival.insert((src, dst), at2);
            // Same channel, right behind the original — a network-level
            // retransmission, FIFO like everything else on the channel.
            // invariant: the original was just pushed; the channel queue exists
            pending.get_mut(&(src, dst)).unwrap().push_back(Pending {
                env: dup,
                arrive: at2,
                ship_seq: *ship_seq,
                // analyze: allow(payload-copy, "vector-clock u64 snapshot, not a wire payload")
                send_clock: send_clock.to_vec(),
            });
            *ship_seq += 1;
        }
    }
}

/// The controlled event loop: the sim driver re-plumbed so an explorer (or
/// a replay artifact) picks which channel delivers next. Returns the run
/// report, or a run-error description (which the caller treats as a
/// counterexample).
fn controlled_run(
    driver: &Driver,
    prefix: &[Chan],
    steps: &mut Vec<StepInfo>,
    probe: &FaultProbe,
) -> Result<RunReport, String> {
    let npes = driver.npes;
    // analyze: allow(nondeterminism, "wall-clock origin for the report's wall field only; scheduling runs on virtual channel time")
    let start = Instant::now();
    let mut epoch = 0u64;
    let mut cfg = (driver.mk_cfg)(0, None, 1, probe.clone());
    let mut entry_slot = Some(driver.mk_entry());
    let mut pes: Vec<PeState> = (0..npes)
        .map(|pe| {
            PeState::new(
                pe,
                npes,
                Arc::clone(&cfg),
                Arc::clone(&driver.registry),
                Arc::clone(&driver.placements),
                Arc::clone(&driver.reducers),
                start,
                if pe == 0 { entry_slot.take() } else { None },
            )
        })
        .collect();

    let mut pending: BTreeMap<Chan, VecDeque<Pending>> = BTreeMap::new();
    let mut ship_seq = 0u64;
    let mut last_arrival: HashMap<(Pe, Pe), u64> = HashMap::new();
    pending.entry((0, 0)).or_default().push_back(Pending {
        env: Envelope::new(0, EnvKind::Bootstrap),
        arrive: 0,
        ship_seq,
        send_clock: tag_clock(0, &vec![0; npes]),
    });
    ship_seq += 1;

    let mut inject_state = match driver.inject {
        Some(InjectFault::KillPe { .. }) | None => None,
        Some(f) => Some((f, 0u64)),
    };
    let mut kill = match driver.inject {
        Some(InjectFault::KillPe { pe, after_nth }) => Some((pe, after_nth, 0u64)),
        _ => None,
    };
    let mut recoveries = 0u64;
    let mut clean_exit = false;
    let mut prefix_iter = prefix.iter().copied();

    loop {
        // The enabled set: channels with a deliverable head, default
        // priority = smallest (modeled arrival, ship seq) — the exact order
        // the uncontrolled EventQueue would pop, so the default extension
        // reproduces a plain sim run.
        let mut heads: Vec<(u64, u64, Chan)> = pending
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(c, q)| {
                // invariant: non-empty queues only, per the filter above
                let f = q.front().unwrap();
                (f.arrive, f.ship_seq, *c)
            })
            .collect();
        if heads.is_empty() {
            // Scheduler-idle aggregation flush, as in the sim driver: parked
            // sender-side traffic is released in PE order, then the loop
            // re-examines the channels.
            let mut flushed = false;
            for src in 0..npes {
                if pes[src].flush_aggregation() {
                    flushed = true;
                    let now = pes[src].clock_ns;
                    let clock = tag_clock(epoch, pes[src].det.clock());
                    let outbox: Vec<(Pe, Envelope)> = pes[src].outbox.drain(..).collect();
                    ship(
                        src,
                        now,
                        outbox,
                        &clock,
                        &driver.model,
                        &mut pending,
                        &mut ship_seq,
                        &mut last_arrival,
                        &mut inject_state,
                    );
                }
            }
            if flushed {
                continue;
            }
            break;
        }
        heads.sort_unstable();
        let enabled: Vec<Chan> = heads.iter().map(|h| h.2).collect();
        // Prescribed decisions replay with skip-if-disabled semantics (a
        // channel with nothing pending is skipped), which makes every
        // subsequence of a failing schedule well-defined — the closure
        // property the ddmin shrinker needs.
        let chosen = loop {
            match prefix_iter.next() {
                Some(c) if enabled.contains(&c) => break c,
                Some(_) => continue,
                None => break enabled[0],
            }
        };
        // invariant: chosen comes from the enabled set, whose channels have
        // pending messages
        let msg = pending.get_mut(&chosen).unwrap().pop_front().unwrap();
        let (t, env) = (msg.arrive, msg.env);
        let pe = chosen.1;

        // Injected PE kill: fires at the delivery that would be the
        // victim's Nth QD-counted envelope, exactly as in the sim driver.
        let mut fire = false;
        if let Some((victim, after_nth, count)) = &mut kill {
            let w = env.kind.qd_weight();
            if *victim == pe && w > 0 && env.epoch == epoch {
                let n = *count;
                *count += w;
                fire = n <= *after_nth && *after_nth < n + w;
            }
        }
        if fire {
            kill = None;
            let failure = format!("injected failure of PE {pe}");
            if !driver.recovery_armed() {
                return Err(format!(
                    "cannot recover from \"{failure}\": automatic checkpointing or the recovery \
                     entry is not armed"
                ));
            }
            if recoveries >= driver.max_restarts {
                return Err(format!(
                    "gave up after {recoveries} restart(s); last failure: {failure}"
                ));
            }
            let stores: Vec<Option<CkptStore>> = pes
                .iter_mut()
                .enumerate()
                .map(|(i, p)| (i != pe).then(|| std::mem::take(&mut p.ckpt_store)))
                .collect();
            let (generation, src) = driver
                .recovery_source(&stores)
                .map_err(|reason| format!("cannot recover from \"{failure}\": {reason}"))?;
            recoveries += 1;
            epoch += 1;
            cfg = (driver.mk_cfg)(epoch, Some(src), generation + 1, probe.clone());
            let mut entry = driver.recovery_entry();
            pes = (0..npes)
                .map(|p| {
                    let mut st = PeState::new(
                        p,
                        npes,
                        Arc::clone(&cfg),
                        Arc::clone(&driver.registry),
                        Arc::clone(&driver.placements),
                        Arc::clone(&driver.reducers),
                        start,
                        if p == 0 { entry.take() } else { None },
                    );
                    st.clock_ns = t;
                    st
                })
                .collect();
            // Pre-failure traffic would only be epoch-discarded on delivery;
            // dropping it here is observationally equivalent and keeps the
            // explored state space to live transitions.
            pending.clear();
            let mut boot = Envelope::new(0, EnvKind::Bootstrap);
            boot.epoch = epoch;
            pending.entry((0, 0)).or_default().push_back(Pending {
                env: boot,
                arrive: t,
                ship_seq,
                send_clock: tag_clock(epoch, &vec![0; npes]),
            });
            ship_seq += 1;
            // The restart is a global barrier: its clock is the new epoch's
            // zero on every component, which every post-recovery send
            // dominates and no pre-recovery delivery reaches.
            steps.push(StepInfo {
                chan: chosen,
                enabled,
                send_clock: msg.send_clock,
                clock_after: vec![epoch << EPOCH_TAG_SHIFT; npes],
            });
            continue;
        }

        let state = &mut pes[pe];
        if t > state.clock_ns {
            state.tracer.idle(state.clock_ns, t);
            state.clock_ns = t;
        }
        state.handle(env);
        state.clock_ns += std::mem::take(&mut state.event_work_ns);
        let now = state.clock_ns;
        // One snapshot serves as this delivery's clock *and* the send clock
        // of everything the handler emitted: the handler is atomic, so any
        // finer granularity would claim concurrency no schedule realizes.
        let clock_after = tag_clock(epoch, state.det.clock());
        let outbox: Vec<(Pe, Envelope)> = state.outbox.drain(..).collect();
        let exited = state.exited;
        ship(
            pe,
            now,
            outbox,
            &clock_after,
            &driver.model,
            &mut pending,
            &mut ship_seq,
            &mut last_arrival,
            &mut inject_state,
        );
        steps.push(StepInfo {
            chan: chosen,
            enabled,
            send_clock: msg.send_clock,
            clock_after,
        });
        if exited {
            clean_exit = true;
            break;
        }
    }

    // Quiescence invariants, as in the sim driver: the probe collects any
    // imbalance as a finding (= counterexample) instead of panicking.
    crate::analyze::check_balance(
        pes.iter().map(|p| p.det_summary()).collect(),
        !clean_exit,
        Some(probe),
    );
    crate::analyze::check_counter_balance(
        &pes.iter().map(|p| p.counter_totals()).collect::<Vec<_>>(),
        !clean_exit,
        Some(probe),
    );

    let makespan = pes.iter().map(|p| p.clock_ns).max().unwrap_or(0);
    let lb_epochs = pes[0].lb_epochs();
    let traces: Vec<PeTrace> = pes.iter_mut().map(|p| p.finish_trace()).collect();
    Ok(crate::runtime::finish_report(
        start.elapsed(),
        Duration::from_nanos(makespan),
        lb_epochs,
        recoveries,
        clean_exit,
        traces,
    ))
}
