//! Proxies: handles for remote method invocation (paper §II-D).
//!
//! A proxy references either one chare or a whole collection. Calling
//! `send` on a collection proxy broadcasts; `elem` narrows to one member.
//! Proxies are plain data — `Copy`, serializable — so they can be passed to
//! other chares inside messages, as CharmPy allows.

use std::fmt;
use std::marker::PhantomData;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::chare::{Chare, MsgGuard};
use crate::ctx::{Ctx, Op};
use crate::future::Future;
use crate::ids::{ChareId, CollectionId, Index, Pe};
use crate::msg::{Message, OutPayload};
use crate::reduction::RedTarget;

/// A typed handle to one chare or a whole collection of chares of type `T`.
pub struct Proxy<T: Chare> {
    coll: CollectionId,
    /// `Some` = element proxy, `None` = whole-collection proxy.
    index: Option<Index>,
    _ph: PhantomData<fn() -> T>,
}

impl<T: Chare> Proxy<T> {
    pub(crate) fn collection(coll: CollectionId) -> Self {
        Proxy {
            coll,
            index: None,
            _ph: PhantomData,
        }
    }

    pub(crate) fn element(coll: CollectionId, index: Index) -> Self {
        Proxy {
            coll,
            index: Some(index),
            _ph: PhantomData,
        }
    }

    /// The collection this proxy refers to.
    pub fn coll_id(&self) -> CollectionId {
        self.coll
    }

    /// Rebuild a collection proxy from a known id — for use after
    /// `Runtime::run_restored`, where the original run's proxies are gone.
    /// Collection ids are deterministic (`(creator_pe, creation_seq)`), so
    /// an application that knows its creation order can always reconstruct
    /// them; persisting `coll_id()` alongside the checkpoint also works.
    pub fn restored(coll: CollectionId) -> Proxy<T> {
        Proxy::collection(coll)
    }

    /// The element index, if this is an element proxy.
    pub fn index(&self) -> Option<Index> {
        self.index
    }

    /// Whether this proxy addresses a whole collection (a send broadcasts).
    pub fn is_collection(&self) -> bool {
        self.index.is_none()
    }

    /// Narrow a collection proxy to one element (`proxy[index]`).
    pub fn elem(&self, index: impl Into<Index>) -> Proxy<T> {
        Proxy::element(self.coll, index.into())
    }

    /// Invoke an entry method: delivers `msg` to the element, or broadcasts
    /// it to every member if this is a collection proxy. Returns
    /// immediately; delivery is asynchronous (§II-D).
    pub fn send(&self, ctx: &mut Ctx, msg: T::Msg) {
        match self.index {
            Some(index) => ctx.ops.push(Op::SendElem {
                to: ChareId {
                    coll: self.coll,
                    index,
                },
                payload: OutPayload::new(msg),
                reply: None,
                guard: None,
            }),
            None => {
                // Broadcasts are encoded once at the call site into shared
                // bytes and decoded per member; every tree hop and local
                // fan-out clones the handle, never the allocation.
                let bytes = ctx
                    .seed
                    .codec
                    .encode_shared(&msg)
                    // analyze: allow(panic, "encoding the user's broadcast message fails only on a codec bug")
                    .expect("broadcast message failed to encode");
                ctx.ops.push(Op::Broadcast {
                    coll: self.coll,
                    bytes,
                });
            }
        }
    }

    /// Invoke an entry method and obtain a future for its reply — the
    /// `ret=True` mechanism (§II-D). The callee fulfills it with
    /// `ctx.reply(value)`. Element proxies only.
    pub fn call<V: Message>(&self, ctx: &mut Ctx, msg: T::Msg) -> Future<V> {
        let index = self
            .index
            // analyze: allow(panic, "API contract: call() on a whole-collection proxy is a user error, reported like CharmPy's exception")
            .expect("call() needs an element proxy; use reductions for collective results");
        let fut = ctx.create_future::<V>();
        ctx.ops.push(Op::SendElem {
            to: ChareId {
                coll: self.coll,
                index,
            },
            payload: OutPayload::new(msg),
            reply: Some(fut.id()),
            guard: None,
        });
        fut
    }

    /// Invoke an entry method with a *per-message* when-condition (the
    /// sender-side conditions of §II-E, listed there as future work): the
    /// receiver buffers `msg` until the registered `guard` predicate holds
    /// over its state, in addition to the type's own [`Chare::guard`].
    /// Element proxies only.
    pub fn send_when(&self, ctx: &mut Ctx, msg: T::Msg, guard: MsgGuard) {
        let index = self
            .index
            // analyze: allow(panic, "API contract: send_when requires an element proxy; user error otherwise")
            .expect("send_when needs an element proxy");
        ctx.ops.push(Op::SendElem {
            to: ChareId {
                coll: self.coll,
                index,
            },
            payload: OutPayload::new(msg),
            reply: None,
            guard: Some(guard.0),
        });
    }

    /// Build a *section*: a proxy over an explicit subset of this
    /// collection's members. Sending through it multicasts to exactly those
    /// members (encoded once at the call site).
    pub fn section(&self, members: impl IntoIterator<Item = impl Into<Index>>) -> Section<T> {
        Section {
            coll: self.coll,
            members: members.into_iter().map(Into::into).collect(),
            _ph: PhantomData,
        }
    }

    /// A reduction target that invokes `Chare::reduced(tag, data)` on this
    /// element (or broadcasts the result to the whole collection).
    pub fn reduction_target(&self, tag: u32) -> RedTarget {
        match self.index {
            Some(index) => RedTarget::Element(
                ChareId {
                    coll: self.coll,
                    index,
                },
                tag,
            ),
            None => RedTarget::Broadcast(self.coll, tag),
        }
    }

    /// Insert an element into a *sparse* array (`ckInsert`); with
    /// `on_pe: None` the element is placed by the array's placement policy.
    pub fn insert(&self, ctx: &mut Ctx, index: impl Into<Index>, init: T::Init, on_pe: Option<Pe>) {
        ctx.ops.push(Op::InsertElem {
            coll: self.coll,
            index: index.into(),
            init: OutPayload::new(init),
            on_pe,
        });
    }

    /// Declare the sparse insertion phase finished (`ckDoneInserting`).
    pub fn done_inserting(&self, ctx: &mut Ctx) {
        ctx.ops.push(Op::DoneInserting { coll: self.coll });
    }
}

impl<T: Chare> Clone for Proxy<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Chare> Copy for Proxy<T> {}

impl<T: Chare> PartialEq for Proxy<T> {
    fn eq(&self, other: &Self) -> bool {
        self.coll == other.coll && self.index == other.index
    }
}
impl<T: Chare> Eq for Proxy<T> {}

impl<T: Chare> fmt::Debug for Proxy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(ix) => write!(
                f,
                "Proxy<{}>[{}{}]",
                std::any::type_name::<T>(),
                self.coll,
                ix
            ),
            None => write!(f, "Proxy<{}>[{}]", std::any::type_name::<T>(), self.coll),
        }
    }
}

#[derive(Serialize, Deserialize)]
struct ProxyWire {
    coll: CollectionId,
    index: Option<Index>,
}

impl<T: Chare> Serialize for Proxy<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ProxyWire {
            coll: self.coll,
            index: self.index,
        }
        .serialize(s)
    }
}

impl<'de, T: Chare> Deserialize<'de> for Proxy<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let w = ProxyWire::deserialize(d)?;
        Ok(Proxy {
            coll: w.coll,
            index: w.index,
            _ph: PhantomData,
        })
    }
}

/// A section: an explicit subset of a collection's members, used for
/// multicast (Charm++ array sections). Serializable like a proxy, so it can
/// be handed to other chares.
pub struct Section<T: Chare> {
    coll: CollectionId,
    members: Vec<Index>,
    _ph: PhantomData<fn() -> T>,
}

impl<T: Chare> Section<T> {
    /// The member indices of this section.
    pub fn members(&self) -> &[Index] {
        &self.members
    }

    /// Multicast `msg` to every member of the section: one encode, one
    /// shared allocation, however many members.
    pub fn send(&self, ctx: &mut Ctx, msg: T::Msg) {
        let bytes = ctx
            .seed
            .codec
            .encode_shared(&msg)
            // analyze: allow(panic, "encoding the user's multicast message fails only on a codec bug")
            .expect("multicast message failed to encode");
        ctx.ops.push(Op::Multicast {
            coll: self.coll,
            members: self.members.clone(),
            bytes,
        });
    }
}

impl<T: Chare> Clone for Section<T> {
    fn clone(&self) -> Self {
        Section {
            coll: self.coll,
            members: self.members.clone(),
            _ph: PhantomData,
        }
    }
}

impl<T: Chare> fmt::Debug for Section<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Section<{}>[{} x{}]",
            std::any::type_name::<T>(),
            self.coll,
            self.members.len()
        )
    }
}

#[derive(Serialize, Deserialize)]
struct SectionWire {
    coll: CollectionId,
    members: Vec<Index>,
}

impl<T: Chare> Serialize for Section<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        SectionWire {
            coll: self.coll,
            members: self.members.clone(),
        }
        .serialize(s)
    }
}

impl<'de, T: Chare> Deserialize<'de> for Section<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let w = SectionWire::deserialize(d)?;
        Ok(Section {
            coll: w.coll,
            members: w.members,
            _ph: PhantomData,
        })
    }
}
