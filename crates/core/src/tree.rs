//! PE spanning trees for broadcasts and reductions.
//!
//! Charm++ performs collective operations over topology-aware spanning
//! trees (paper §IV-D). Two shapes are provided: a plain k-ary tree over PE
//! numbers, and a node-aware two-level tree in which PEs sharing a node
//! first reduce to a node leader and leaders form a k-ary tree — cutting
//! off-node traffic roughly by the node width. The benches compare both.

use crate::ids::Pe;

/// Shape of the collective spanning tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    /// Branching factor of the (leader) tree. Must be ≥ 1.
    pub arity: usize,
    /// `Some(cpn)` builds the node-aware two-level tree with `cpn` PEs per
    /// node; `None` builds a flat k-ary tree over all PEs.
    pub cores_per_node: Option<usize>,
}

impl Default for TreeShape {
    fn default() -> Self {
        TreeShape {
            arity: 4,
            cores_per_node: None,
        }
    }
}

impl TreeShape {
    /// Relabel `pe` so the tree is rooted at `root`.
    #[inline]
    fn rel(pe: Pe, root: Pe, npes: usize) -> usize {
        (pe + npes - root) % npes
    }
    #[inline]
    fn unrel(r: usize, root: Pe, npes: usize) -> Pe {
        (r + root) % npes
    }

    /// Parent of `pe` in the tree rooted at `root`, or `None` for the root.
    pub fn parent(&self, pe: Pe, root: Pe, npes: usize) -> Option<Pe> {
        assert!(pe < npes && root < npes);
        if pe == root {
            return None;
        }
        match self.cores_per_node {
            None => {
                let r = Self::rel(pe, root, npes);
                Some(Self::unrel((r - 1) / self.arity.max(1), root, npes))
            }
            Some(cpn) => {
                let cpn = cpn.max(1);
                let r = Self::rel(pe, root, npes);
                let (node, lane) = (r / cpn, r % cpn);
                if lane != 0 {
                    // Non-leader: parent is this node's leader.
                    Some(Self::unrel(node * cpn, root, npes))
                } else {
                    // Node leader: parent is the previous node's leader.
                    let pnode = (node - 1) / self.arity.max(1);
                    Some(Self::unrel(pnode * cpn, root, npes))
                }
            }
        }
    }

    /// Children of `pe` in the tree rooted at `root`.
    pub fn children(&self, pe: Pe, root: Pe, npes: usize) -> Vec<Pe> {
        assert!(pe < npes && root < npes);
        let r = Self::rel(pe, root, npes);
        let mut out = Vec::new();
        match self.cores_per_node {
            None => {
                let k = self.arity.max(1);
                for c in (k * r + 1)..=(k * r + k) {
                    if c < npes {
                        out.push(Self::unrel(c, root, npes));
                    }
                }
            }
            Some(cpn) => {
                let cpn = cpn.max(1);
                let k = self.arity.max(1);
                let (node, lane) = (r / cpn, r % cpn);
                if lane == 0 {
                    // Leader: local lanes plus child-node leaders.
                    for l in 1..cpn {
                        let c = node * cpn + l;
                        if c < npes {
                            out.push(Self::unrel(c, root, npes));
                        }
                    }
                    let nnodes = npes.div_ceil(cpn);
                    for cn in (k * node + 1)..=(k * node + k) {
                        if cn < nnodes {
                            let c = cn * cpn;
                            if c < npes {
                                out.push(Self::unrel(c, root, npes));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of PEs in the subtree rooted at `pe` (including itself).
    pub fn subtree_size(&self, pe: Pe, root: Pe, npes: usize) -> usize {
        1 + self
            .children(pe, root, npes)
            .iter()
            .map(|&c| self.subtree_size(c, root, npes))
            .sum::<usize>()
    }

    /// Relay fan-out of `pe` in the tree rooted at `root` — the number of
    /// PEs it forwards a broadcast to (what the trace's `bcast_fanout`
    /// events record per hop).
    pub fn fanout(&self, pe: Pe, root: Pe, npes: usize) -> usize {
        self.children(pe, root, npes).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_tree(shape: TreeShape, root: Pe, npes: usize) {
        // Every non-root PE has exactly one parent, parent/children agree,
        // and the tree spans all PEs.
        for pe in 0..npes {
            let parent = shape.parent(pe, root, npes);
            if pe == root {
                assert_eq!(parent, None);
            } else {
                let p = parent.expect("non-root must have a parent");
                assert!(
                    shape.children(p, root, npes).contains(&pe),
                    "pe {pe} not among children of its parent {p}"
                );
            }
            for c in shape.children(pe, root, npes) {
                assert_eq!(shape.parent(c, root, npes), Some(pe));
            }
        }
        assert_eq!(shape.subtree_size(root, root, npes), npes);
    }

    #[test]
    fn kary_trees_span() {
        for arity in [1, 2, 3, 4, 8] {
            for npes in [1, 2, 5, 16, 33] {
                for root in [0, npes / 2, npes - 1] {
                    check_tree(
                        TreeShape {
                            arity,
                            cores_per_node: None,
                        },
                        root,
                        npes,
                    );
                }
            }
        }
    }

    #[test]
    fn node_aware_trees_span() {
        for cpn in [1, 2, 4, 8] {
            for npes in [1, 3, 8, 17, 64] {
                for root in [0, npes - 1] {
                    check_tree(
                        TreeShape {
                            arity: 2,
                            cores_per_node: Some(cpn),
                        },
                        root,
                        npes,
                    );
                }
            }
        }
    }

    #[test]
    fn binary_tree_structure() {
        let t = TreeShape {
            arity: 2,
            cores_per_node: None,
        };
        assert_eq!(t.children(0, 0, 7), vec![1, 2]);
        assert_eq!(t.children(1, 0, 7), vec![3, 4]);
        assert_eq!(t.children(2, 0, 7), vec![5, 6]);
        assert_eq!(t.parent(6, 0, 7), Some(2));
    }

    #[test]
    fn fanout_matches_children() {
        let t = TreeShape {
            arity: 2,
            cores_per_node: None,
        };
        assert_eq!(t.fanout(0, 0, 7), 2);
        assert_eq!(t.fanout(3, 0, 7), 0);
        // Interior fan-outs sum to the non-root population.
        let total: usize = (0..7).map(|pe| t.fanout(pe, 0, 7)).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn node_aware_keeps_lanes_under_leader() {
        let t = TreeShape {
            arity: 2,
            cores_per_node: Some(4),
        };
        // Rooted at 0: PEs 1,2,3 hang off leader 0; leaders 4 and 8 are
        // child-node leaders of node 0.
        let kids = t.children(0, 0, 16);
        assert!(kids.contains(&1) && kids.contains(&2) && kids.contains(&3));
        assert!(kids.contains(&4) && kids.contains(&8));
        assert_eq!(t.parent(5, 0, 16), Some(4));
    }

    #[test]
    fn rooted_relabeling() {
        let t = TreeShape {
            arity: 4,
            cores_per_node: None,
        };
        // Rooted at 3 in 5 PEs: relabeled children of root are 1..4 → PEs 4,0,1,2.
        assert_eq!(t.parent(3, 3, 5), None);
        assert_eq!(t.children(3, 3, 5), vec![4, 0, 1, 2]);
    }
}
