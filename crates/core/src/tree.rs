//! PE spanning trees for broadcasts and reductions.
//!
//! Charm++ performs collective operations over topology-aware spanning
//! trees (paper §IV-D). Two shapes are provided: a plain k-ary tree over PE
//! numbers, and a node-aware two-level tree in which PEs sharing a node
//! first reduce to a node leader and leaders form a k-ary tree — cutting
//! off-node traffic roughly by the node width. The benches compare both.

use crate::ids::Pe;

/// Shape of the collective spanning tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    /// Branching factor of the (leader) tree. Must be ≥ 1.
    pub arity: usize,
    /// `Some(cpn)` builds the node-aware two-level tree with `cpn` PEs per
    /// node; `None` builds a flat k-ary tree over all PEs.
    pub cores_per_node: Option<usize>,
}

impl Default for TreeShape {
    fn default() -> Self {
        TreeShape {
            arity: 4,
            cores_per_node: None,
        }
    }
}

impl TreeShape {
    /// Relabel `pe` so the tree is rooted at `root`.
    #[inline]
    fn rel(pe: Pe, root: Pe, npes: usize) -> usize {
        (pe + npes - root) % npes
    }
    #[inline]
    fn unrel(r: usize, root: Pe, npes: usize) -> Pe {
        (r + root) % npes
    }

    /// Parent of `pe` in the tree rooted at `root`, or `None` for the root.
    pub fn parent(&self, pe: Pe, root: Pe, npes: usize) -> Option<Pe> {
        assert!(pe < npes && root < npes);
        if pe == root {
            return None;
        }
        match self.cores_per_node {
            None => {
                let r = Self::rel(pe, root, npes);
                Some(Self::unrel((r - 1) / self.arity.max(1), root, npes))
            }
            Some(cpn) => {
                let cpn = cpn.max(1);
                let r = Self::rel(pe, root, npes);
                let (node, lane) = (r / cpn, r % cpn);
                if lane != 0 {
                    // Non-leader: parent is this node's leader.
                    Some(Self::unrel(node * cpn, root, npes))
                } else {
                    // Node leader: parent is the previous node's leader.
                    let pnode = (node - 1) / self.arity.max(1);
                    Some(Self::unrel(pnode * cpn, root, npes))
                }
            }
        }
    }

    /// Visit the children of `pe` in the tree rooted at `root`, in the
    /// same order [`TreeShape::children`] returns them, without allocating.
    /// This is the hot-path form: broadcast/reduction relays at 10^5 PEs
    /// call it per hop, where a `Vec` per relay would dominate.
    pub fn children_for_each(&self, pe: Pe, root: Pe, npes: usize, mut f: impl FnMut(Pe)) {
        assert!(pe < npes && root < npes);
        let r = Self::rel(pe, root, npes);
        match self.cores_per_node {
            None => {
                let k = self.arity.max(1);
                for c in (k * r + 1)..=(k * r + k) {
                    if c < npes {
                        f(Self::unrel(c, root, npes));
                    }
                }
            }
            Some(cpn) => {
                let cpn = cpn.max(1);
                let k = self.arity.max(1);
                let (node, lane) = (r / cpn, r % cpn);
                if lane == 0 {
                    // Leader: local lanes plus child-node leaders.
                    for l in 1..cpn {
                        let c = node * cpn + l;
                        if c < npes {
                            f(Self::unrel(c, root, npes));
                        }
                    }
                    let nnodes = npes.div_ceil(cpn);
                    for cn in (k * node + 1)..=(k * node + k) {
                        if cn < nnodes {
                            let c = cn * cpn;
                            if c < npes {
                                f(Self::unrel(c, root, npes));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Children of `pe` in the tree rooted at `root`.
    pub fn children(&self, pe: Pe, root: Pe, npes: usize) -> Vec<Pe> {
        let mut out = Vec::new();
        self.children_for_each(pe, root, npes, |c| out.push(c));
        out
    }

    /// Closed-form size of the k-ary subtree rooted at relabeled index `r`
    /// over `n` relabeled slots: walk the level ranges `[lo, hi]` —
    /// children of `[lo, hi]` are `[k·lo+1, k·hi+k]` — clamping to `n`.
    /// O(log_k n) per call, no recursion, no allocation.
    fn kary_subtree(k: usize, r: usize, n: usize) -> usize {
        let k = k.max(1);
        if r >= n {
            return 0;
        }
        // A 1-ary tree is a chain: the subtree of `r` is everything below.
        if k == 1 {
            return n - r;
        }
        let (mut lo, mut hi) = (r, r);
        let mut size = 0usize;
        while lo < n {
            size += hi.min(n - 1) - lo + 1;
            // Next level; saturate so arity-1 chains and huge n can't wrap.
            lo = k.saturating_mul(lo).saturating_add(1);
            hi = k.saturating_mul(hi).saturating_add(k);
        }
        size
    }

    /// Number of PEs in the subtree rooted at `pe` (including itself).
    /// Closed-form: O(log npes), independent of the subtree population —
    /// the recursive formulation was O(subtree) per call and overflowed
    /// the stack on arity-1 (chain) trees at scale.
    pub fn subtree_size(&self, pe: Pe, root: Pe, npes: usize) -> usize {
        assert!(pe < npes && root < npes);
        let r = Self::rel(pe, root, npes);
        match self.cores_per_node {
            None => Self::kary_subtree(self.arity, r, npes),
            Some(cpn) => {
                let cpn = cpn.max(1);
                let (node, lane) = (r / cpn, r % cpn);
                if lane != 0 {
                    // Non-leader lanes are leaves.
                    return 1;
                }
                // Leader: the node-level k-ary subtree, where every node
                // holds `cpn` PEs except the last, which holds the tail.
                let nnodes = npes.div_ceil(cpn);
                let nodes = Self::kary_subtree(self.arity, node, nnodes);
                let mut size = nodes * cpn;
                // The last node is in this subtree iff its whole level walk
                // covers it; detect by asking whether the node subtree
                // containing `nnodes - 1` includes `node` as an ancestor —
                // equivalently, whether the tail node's chain of ancestors
                // reaches `node`. Cheaper: the last node is in the subtree
                // iff kary_subtree counted it, i.e. the subtree over
                // `nnodes` differs from the subtree over `nnodes - 1`.
                if nnodes > 0 && nodes != Self::kary_subtree(self.arity, node, nnodes - 1) {
                    size -= cpn - (npes - (nnodes - 1) * cpn);
                }
                size
            }
        }
    }

    /// Relay fan-out of `pe` in the tree rooted at `root` — the number of
    /// PEs it forwards a broadcast to (what the trace's `bcast_fanout`
    /// events record per hop). Allocation-free.
    pub fn fanout(&self, pe: Pe, root: Pe, npes: usize) -> usize {
        let mut n = 0;
        self.children_for_each(pe, root, npes, |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_tree(shape: TreeShape, root: Pe, npes: usize) {
        // Every non-root PE has exactly one parent, parent/children agree,
        // and the tree spans all PEs.
        for pe in 0..npes {
            let parent = shape.parent(pe, root, npes);
            if pe == root {
                assert_eq!(parent, None);
            } else {
                let p = parent.expect("non-root must have a parent");
                assert!(
                    shape.children(p, root, npes).contains(&pe),
                    "pe {pe} not among children of its parent {p}"
                );
            }
            for c in shape.children(pe, root, npes) {
                assert_eq!(shape.parent(c, root, npes), Some(pe));
            }
        }
        assert_eq!(shape.subtree_size(root, root, npes), npes);
    }

    #[test]
    fn kary_trees_span() {
        for arity in [1, 2, 3, 4, 8] {
            for npes in [1, 2, 5, 16, 33] {
                for root in [0, npes / 2, npes - 1] {
                    check_tree(
                        TreeShape {
                            arity,
                            cores_per_node: None,
                        },
                        root,
                        npes,
                    );
                }
            }
        }
    }

    #[test]
    fn node_aware_trees_span() {
        for cpn in [1, 2, 4, 8] {
            for npes in [1, 3, 8, 17, 64] {
                for root in [0, npes - 1] {
                    check_tree(
                        TreeShape {
                            arity: 2,
                            cores_per_node: Some(cpn),
                        },
                        root,
                        npes,
                    );
                }
            }
        }
    }

    #[test]
    fn binary_tree_structure() {
        let t = TreeShape {
            arity: 2,
            cores_per_node: None,
        };
        assert_eq!(t.children(0, 0, 7), vec![1, 2]);
        assert_eq!(t.children(1, 0, 7), vec![3, 4]);
        assert_eq!(t.children(2, 0, 7), vec![5, 6]);
        assert_eq!(t.parent(6, 0, 7), Some(2));
    }

    #[test]
    fn fanout_matches_children() {
        let t = TreeShape {
            arity: 2,
            cores_per_node: None,
        };
        assert_eq!(t.fanout(0, 0, 7), 2);
        assert_eq!(t.fanout(3, 0, 7), 0);
        // Interior fan-outs sum to the non-root population.
        let total: usize = (0..7).map(|pe| t.fanout(pe, 0, 7)).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn node_aware_keeps_lanes_under_leader() {
        let t = TreeShape {
            arity: 2,
            cores_per_node: Some(4),
        };
        // Rooted at 0: PEs 1,2,3 hang off leader 0; leaders 4 and 8 are
        // child-node leaders of node 0.
        let kids = t.children(0, 0, 16);
        assert!(kids.contains(&1) && kids.contains(&2) && kids.contains(&3));
        assert!(kids.contains(&4) && kids.contains(&8));
        assert_eq!(t.parent(5, 0, 16), Some(4));
    }

    #[test]
    fn rooted_relabeling() {
        let t = TreeShape {
            arity: 4,
            cores_per_node: None,
        };
        // Rooted at 3 in 5 PEs: relabeled children of root are 1..4 → PEs 4,0,1,2.
        assert_eq!(t.parent(3, 3, 5), None);
        assert_eq!(t.children(3, 3, 5), vec![4, 0, 1, 2]);
    }

    /// Reference implementation: the pre-closed-form recursive walk.
    fn subtree_size_recursive(shape: &TreeShape, pe: Pe, root: Pe, npes: usize) -> usize {
        1 + shape
            .children(pe, root, npes)
            .iter()
            .map(|&c| subtree_size_recursive(shape, c, root, npes))
            .sum::<usize>()
    }

    #[test]
    fn closed_form_subtree_matches_recursive() {
        for shape in [
            TreeShape {
                arity: 1,
                cores_per_node: None,
            },
            TreeShape {
                arity: 2,
                cores_per_node: None,
            },
            TreeShape {
                arity: 4,
                cores_per_node: None,
            },
            TreeShape {
                arity: 2,
                cores_per_node: Some(3),
            },
            TreeShape {
                arity: 3,
                cores_per_node: Some(4),
            },
            TreeShape {
                arity: 2,
                cores_per_node: Some(1),
            },
        ] {
            for npes in [1usize, 2, 5, 16, 33, 64, 100] {
                for root in [0, npes / 3, npes - 1] {
                    for pe in 0..npes {
                        assert_eq!(
                            shape.subtree_size(pe, root, npes),
                            subtree_size_recursive(&shape, pe, root, npes),
                            "shape {shape:?} pe {pe} root {root} npes {npes}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn children_for_each_matches_children_and_fanout() {
        for shape in [
            TreeShape {
                arity: 4,
                cores_per_node: None,
            },
            TreeShape {
                arity: 2,
                cores_per_node: Some(4),
            },
        ] {
            for npes in [1usize, 7, 32, 65] {
                for root in [0, npes - 1] {
                    for pe in 0..npes {
                        let mut seen = Vec::new();
                        shape.children_for_each(pe, root, npes, |c| seen.push(c));
                        assert_eq!(seen, shape.children(pe, root, npes));
                        assert_eq!(seen.len(), shape.fanout(pe, root, npes));
                    }
                }
            }
        }
    }

    /// The 65,536-PE invariant suite: parent/child agreement and span at
    /// root 0 and a non-zero root, for the default flat tree and a
    /// node-aware shape. Sampled parents (every PE checks its own parent
    /// link) plus closed-form span keep this O(npes·arity).
    #[test]
    fn trees_span_at_65536_pes() {
        let npes = 65_536;
        for shape in [
            TreeShape {
                arity: 4,
                cores_per_node: None,
            },
            TreeShape {
                arity: 8,
                cores_per_node: Some(32),
            },
        ] {
            for root in [0, 12_345] {
                assert_eq!(shape.subtree_size(root, root, npes), npes);
                let mut covered = 0usize;
                for pe in 0..npes {
                    match shape.parent(pe, root, npes) {
                        None => assert_eq!(pe, root),
                        Some(p) => {
                            let mut found = false;
                            shape.children_for_each(p, root, npes, |c| found |= c == pe);
                            assert!(found, "pe {pe} missing from parent {p}'s children");
                        }
                    }
                    covered += 1;
                }
                assert_eq!(covered, npes);
                // Fan-outs over the whole tree sum to the non-root count.
                let total: usize = (0..npes).map(|pe| shape.fanout(pe, root, npes)).sum();
                assert_eq!(total, npes - 1);
            }
        }
    }

    /// Arity-1 chains are the recursion-depth worst case: the closed form
    /// must answer without O(npes) stack or time blowups per call.
    #[test]
    fn chain_tree_subtree_sizes() {
        let t = TreeShape {
            arity: 1,
            cores_per_node: None,
        };
        let npes = 500_000;
        assert_eq!(t.subtree_size(0, 0, npes), npes);
        assert_eq!(t.subtree_size(npes / 2, 0, npes), npes - npes / 2);
        assert_eq!(t.subtree_size(npes - 1, 0, npes), 1);
    }
}
