//! Negative-path tests: the runtime must fail loudly and descriptively on
//! API misuse, not hang or corrupt state.

use charm_core::prelude::*;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

struct Plain;

#[derive(Serialize, Deserialize)]
enum PlainMsg {
    Move(usize),
    Noop,
}

impl Chare for Plain {
    type Msg = PlainMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Plain
    }
    fn receive(&mut self, msg: PlainMsg, ctx: &mut Ctx) {
        match msg {
            PlainMsg::Move(pe) => ctx.migrate_me(pe),
            PlainMsg::Noop => {}
        }
    }
}

fn sim(npes: usize) -> Runtime {
    Runtime::new(npes).backend(Backend::Sim(MachineModel::local(npes)))
}

#[test]
#[should_panic(expected = "was not registered")]
fn unregistered_chare_type_panics_with_guidance() {
    sim(2).run(|co| {
        let _ = co.ctx().create_chare::<Plain>((), None);
        co.ctx().exit();
    });
}

#[test]
#[should_panic(expected = "not migratable")]
fn migrating_non_migratable_type_panics() {
    sim(2).register::<Plain>().run(|co| {
        let p = co.ctx().create_chare::<Plain>((), Some(0));
        p.send(co.ctx(), PlainMsg::Move(1));
        // Never reached: the migrate panics first (propagated by run()).
        let f = co.ctx().create_future::<()>();
        co.ctx().start_quiescence(&f);
        co.get(&f);
        co.ctx().exit();
    });
}

#[test]
#[should_panic(expected = "needs an element proxy")]
fn call_on_collection_proxy_panics() {
    sim(2).register::<Plain>().run(|co| {
        let arr = co.ctx().create_array::<Plain>(&[4], ());
        let _f: Future<()> = arr.call(co.ctx(), PlainMsg::Noop);
        co.ctx().exit();
    });
}

#[test]
#[should_panic(expected = "out of range")]
fn create_on_invalid_pe_panics() {
    sim(2).register::<Plain>().run(|co| {
        let _ = co.ctx().create_chare::<Plain>((), Some(99));
        co.ctx().exit();
    });
}

#[test]
#[should_panic(expected = "dims must be positive")]
fn zero_sized_array_panics() {
    sim(2).register::<Plain>().run(|co| {
        let _ = co.ctx().create_array::<Plain>(&[4, 0], ());
        co.ctx().exit();
    });
}

#[test]
#[should_panic(expected = "at least one PE")]
fn zero_pes_rejected() {
    let _ = Runtime::new(0);
}

#[test]
#[should_panic(expected = "awaited on the PE that created them")]
fn future_get_on_wrong_pe_panics() {
    struct Waiter2;
    #[derive(Serialize, Deserialize)]
    enum W2 {
        TryGet { f: Future<i64> },
    }
    impl Chare for Waiter2 {
        type Msg = W2;
        type Init = ();
        fn create(_: (), _: &mut Ctx) -> Self {
            Waiter2
        }
        fn receive(&mut self, msg: W2, ctx: &mut Ctx) {
            let W2::TryGet { f } = msg;
            ctx.go::<Waiter2>(move |co| {
                let _ = co.get(&f); // wrong PE: must panic
            });
        }
    }
    sim(2).register::<Waiter2>().run(|co| {
        let w = co.ctx().create_chare::<Waiter2>((), Some(1));
        let f = co.ctx().create_future::<i64>(); // created on PE 0
        w.send(co.ctx(), W2::TryGet { f });
        let q = co.ctx().create_future::<()>();
        co.ctx().start_quiescence(&q);
        co.get(&q);
        co.ctx().exit();
    });
}

#[test]
fn clean_exit_flag_false_on_message_starvation() {
    // A sim run whose app forgets to exit: the driver drains and reports.
    let report = sim(2).register::<Plain>().run(|co| {
        let p = co.ctx().create_chare::<Plain>((), Some(1));
        p.send(co.ctx(), PlainMsg::Noop);
        // no exit(): main just returns; the coroutine stays blocked... so
        // instead, end the coroutine cleanly and let the queue drain.
    });
    assert!(!report.clean_exit, "no exit() => not a clean exit");
}
