//! Detector tests (`--features analyze`, DESIGN.md §6).
//!
//! Negative tests inject network-layer faults on the sim backend — a
//! duplicated envelope, a silently dropped envelope — and assert the
//! dynamic detector reports them through the probe. The positive test
//! explores *every* delivery schedule of one fan-in program with
//! `Runtime::check` and asserts the final state is schedule-independent
//! and the detector stays silent.
//!
//! This target only builds with `--features analyze` (see Cargo.toml
//! `required-features`); `cargo test -p charm-core --features analyze`
//! additionally runs the whole ordinary suite with detectors armed, where
//! any violation panics.

use charm_core::analyze::InjectFault;
use charm_core::prelude::*;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// A counter chare: fire-and-forget bumps, then a called total.
// ---------------------------------------------------------------------------

struct Counter {
    total: i64,
}

#[derive(Serialize, Deserialize)]
enum CounterMsg {
    Bump(i64),
    Total,
}

impl Chare for Counter {
    type Msg = CounterMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Counter { total: 0 }
    }
    fn receive(&mut self, msg: CounterMsg, ctx: &mut Ctx) {
        match msg {
            CounterMsg::Bump(v) => self.total += v,
            CounterMsg::Total => ctx.reply(self.total),
        }
    }
}

fn counter_program(co: &mut Co<Main>) {
    let c = co.ctx().create_chare::<Counter>((), Some(1));
    for i in 0..6 {
        c.send(co.ctx(), CounterMsg::Bump(i));
    }
    let f = c.call::<i64>(co.ctx(), CounterMsg::Total);
    co.get(&f);
    co.ctx().exit();
}

/// Duplicating any cross-PE application envelope at the network layer must
/// show up as a double delivery: the duplicate carries the original's trace
/// id, and the receiving PE's delivered-set flags the repeat. The exact
/// QD-envelope numbering is an implementation detail, so scan the first few
/// positions until the injector hits a duplicable (wire-payload) envelope.
#[test]
fn injected_duplicate_is_detected() {
    let mut found = false;
    for n in 0..12 {
        let (rt, probe) = Runtime::new(2)
            .simulated(MachineModel::local(2))
            .register::<Counter>()
            .analyze_inject(InjectFault::DuplicateNth(n));
        rt.run(counter_program);
        if probe.contains("double-delivered") {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "no injected duplicate was reported in the first 12 positions"
    );
}

/// Dropping an envelope the program depends on (the future ack, the create,
/// a bump the total waits on — any stalling position) must surface as a
/// lost envelope: the queue drains without exit(), and the send/deliver
/// accounting finds a sent id that never reached a delivered-set.
#[test]
fn injected_drop_is_reported_lost() {
    let mut found = false;
    for n in 0..12 {
        let (rt, probe) = Runtime::new(2)
            .simulated(MachineModel::local(2))
            .register::<Counter>()
            .analyze_inject(InjectFault::DropNth(n));
        let report = rt.run(counter_program);
        if probe.contains("lost envelope") {
            assert!(
                !report.clean_exit,
                "lost envelope must only be reported at true quiescence (drained queue)"
            );
            found = true;
            break;
        }
    }
    assert!(
        found,
        "no injected drop was reported as a lost envelope in the first 12 positions"
    );
}

// ---------------------------------------------------------------------------
// Permutation determinism: a fan-in program whose result must not depend on
// the delivery schedule.
// ---------------------------------------------------------------------------

struct Fan {
    sum: i64,
    got: usize,
    expect: usize,
    notify: Option<Future<i64>>,
}

#[derive(Serialize, Deserialize)]
enum FanMsg {
    Push(i64),
    WhenDone { expect: usize, notify: Future<i64> },
}

impl Chare for Fan {
    type Msg = FanMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Fan {
            sum: 0,
            got: 0,
            expect: usize::MAX,
            notify: None,
        }
    }
    fn receive(&mut self, msg: FanMsg, ctx: &mut Ctx) {
        match msg {
            FanMsg::Push(v) => {
                self.sum += v;
                self.got += 1;
            }
            FanMsg::WhenDone { expect, notify } => {
                self.expect = expect;
                self.notify = Some(notify);
            }
        }
        if self.got == self.expect {
            if let Some(f) = self.notify.take() {
                ctx.send_future(&f, self.sum);
            }
        }
    }
}

struct Pusher;

#[derive(Serialize, Deserialize)]
enum PusherMsg {
    Go { fan: Proxy<Fan>, per_pe: i64 },
}

impl Chare for Pusher {
    type Msg = PusherMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Pusher
    }
    fn receive(&mut self, msg: PusherMsg, ctx: &mut Ctx) {
        let PusherMsg::Go { fan, per_pe } = msg;
        // Every group member floods the fan-in chare concurrently: the
        // arrival interleaving across (pe → 0) channels is exactly what the
        // schedule permuter shuffles.
        for k in 0..per_pe {
            fan.send(ctx, FanMsg::Push(ctx.my_pe() as i64 * 1000 + k));
        }
    }
}

/// Schedule determinism, upgraded from sampling to proof: where this test
/// once replayed 16 jittered schedules, `Runtime::check` now explores
/// *every* delivery interleaving of a 2-PE instance up to happens-before
/// equivalence (DESIGN.md §11). The entry asserts the fan-in sum, so any
/// schedule-dependent result is a counterexample; `truncated == false`
/// means the whole space was covered, detector armed throughout.
#[test]
fn fan_in_is_deterministic_under_exhaustive_exploration() {
    use charm_core::CheckCfg;

    const NPES: usize = 2;
    const PER_PE: i64 = 2;
    // Σ over pe of Σ over k of (pe*1000 + k), independent of arrival order.
    let expected: i64 = (0..NPES as i64)
        .map(|pe| (0..PER_PE).map(|k| pe * 1000 + k).sum::<i64>())
        .sum();

    let rt = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .meter_compute(false)
        .register::<Fan>()
        .register::<Pusher>();
    let report = rt.check(
        CheckCfg {
            max_executions: 200_000,
            ..CheckCfg::default()
        },
        move |co| {
            let fan = co.ctx().create_chare::<Fan>((), Some(0));
            let group = co.ctx().create_group::<Pusher>(());
            let done = co.ctx().create_future::<i64>();
            group.send(
                co.ctx(),
                PusherMsg::Go {
                    fan,
                    per_pe: PER_PE,
                },
            );
            fan.send(
                co.ctx(),
                FanMsg::WhenDone {
                    expect: NPES * PER_PE as usize,
                    notify: done,
                },
            );
            assert_eq!(co.get(&done), expected, "fan-in sum is schedule-dependent");
            co.ctx().exit();
        },
    );
    assert!(
        !report.truncated,
        "fan-in exploration did not exhaust the space in {} executions",
        report.executions
    );
    assert!(
        report.counterexample.is_none(),
        "fan-in produced a counterexample: {:?}",
        report.counterexample
    );
    println!(
        "fan-in: {} executions over {} equivalence classes",
        report.executions, report.equivalence_classes
    );
}
