//! Fast-path regressions: the same-PE send path must never round-trip
//! through encode/decode (the §II-D by-reference shortcut), with fast
//! paths on or off, on both backends — and the fast-path counters must
//! stay zero when the paths are disabled.

use std::sync::atomic::{AtomicUsize, Ordering};

use charm_core::prelude::*;
use charm_sim::MachineModel;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Payload that counts its own `Serialize` invocations: a local ping that
/// serializes even once is an encode/decode round-trip regression.
static PING_ENCODES: AtomicUsize = AtomicUsize::new(0);

#[derive(Clone, Copy)]
struct CountedVal(i64);

impl Serialize for CountedVal {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        PING_ENCODES.fetch_add(1, Ordering::SeqCst);
        s.serialize_i64(self.0)
    }
}

impl<'de> Deserialize<'de> for CountedVal {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        i64::deserialize(d).map(CountedVal)
    }
}

struct Pinger {
    sum: i64,
}

#[derive(Serialize, Deserialize)]
enum PingMsg {
    Ping {
        x: CountedVal,
        left: u32,
        done: Future<i64>,
    },
}

impl Chare for Pinger {
    type Msg = PingMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Pinger { sum: 0 }
    }
    fn receive(&mut self, msg: PingMsg, ctx: &mut Ctx) {
        let PingMsg::Ping { x, left, done } = msg;
        self.sum += x.0;
        if left > 0 {
            // Self-send: same chare, same PE — must stay by-reference.
            let me = ctx.this_elem::<Pinger>();
            me.send(
                ctx,
                PingMsg::Ping {
                    x: CountedVal(x.0),
                    left: left - 1,
                    done,
                },
            );
        } else {
            ctx.send_future(&done, self.sum);
        }
    }
}

const PINGS: u32 = 64;

fn run_pings(rt: Runtime) -> charm_core::RunReport {
    rt.register::<Pinger>().run(|co| {
        let p = co.ctx().create_chare::<Pinger>((), Some(0));
        let done = co.ctx().create_future::<i64>();
        p.send(
            co.ctx(),
            PingMsg::Ping {
                x: CountedVal(3),
                left: PINGS,
                done,
            },
        );
        let total = co.get(&done);
        assert_eq!(total, 3 * (PINGS as i64 + 1));
        co.ctx().exit();
    })
}

/// One test body (not several) because the encode counter is global: the
/// phases must run sequentially to keep their deltas attributable.
#[test]
fn local_pings_never_encode_and_the_ablation_proves_the_counter() {
    // Single PE: the main chare, the pinger and every self-send are local.
    for fast in [true, false] {
        for backend in [Backend::Threads, Backend::Sim(MachineModel::local(1))] {
            let before = PING_ENCODES.load(Ordering::SeqCst);
            let report = run_pings(Runtime::new(1).backend(backend).fast_paths(fast));
            assert!(report.clean_exit);
            assert_eq!(
                PING_ENCODES.load(Ordering::SeqCst) - before,
                0,
                "fast={fast}: a same-PE ping was serialized"
            );
            // Logical accounting is unaffected by the payload shortcut.
            assert!(report.msgs >= PINGS as u64);
        }
    }

    // `same_pe_byref(false)` is the control: the same run must serialize
    // every ping, proving the counter observes what it claims to.
    let before = PING_ENCODES.load(Ordering::SeqCst);
    let report = run_pings(
        Runtime::new(1)
            .backend(Backend::Sim(MachineModel::local(1)))
            .same_pe_byref(false),
    );
    assert!(report.clean_exit);
    assert!(
        PING_ENCODES.load(Ordering::SeqCst) - before >= PINGS as usize,
        "ablation did not serialize the pings"
    );
}

#[test]
fn fast_path_counters_are_zero_when_disabled() {
    let report = run_pings(
        Runtime::new(1)
            .backend(Backend::Sim(MachineModel::local(1)))
            .fast_paths(false),
    );
    for p in &report.pe_stats {
        assert_eq!(p.inline_payloads, 0, "inlining ran while disabled");
        assert_eq!(
            p.dispatch_hits + p.dispatch_misses,
            0,
            "dispatch cache ran while disabled"
        );
    }
}
