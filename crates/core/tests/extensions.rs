//! Tests of the extension features: section multicast and sender-side
//! per-message when-conditions (paper §II-E future work).

use charm_core::prelude::*;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

fn both_backends() -> Vec<Backend> {
    vec![Backend::Threads, Backend::Sim(MachineModel::local(4))]
}

// ---------------------------------------------------------------------------
// Section multicast
// ---------------------------------------------------------------------------

struct Member {
    pokes: i64,
}

#[derive(Serialize, Deserialize)]
enum MemberMsg {
    Poke,
    Count { done: Future<RedData> },
}

impl Chare for Member {
    type Msg = MemberMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Member { pokes: 0 }
    }
    fn receive(&mut self, msg: MemberMsg, ctx: &mut Ctx) {
        match msg {
            MemberMsg::Poke => self.pokes += 1,
            MemberMsg::Count { done } => ctx.contribute(
                // Weight by index so we can verify exactly *which* members
                // were poked, not just how many pokes happened.
                RedData::I64(self.pokes * (1 << ctx.my_index().first())),
                Reducer::Sum,
                RedTarget::Future(done.id()),
            ),
        }
    }
}

#[test]
fn section_multicast_hits_exactly_the_members() {
    for backend in both_backends() {
        Runtime::new(3)
            .backend(backend)
            .register::<Member>()
            .run(|co| {
                let arr = co.ctx().create_array::<Member>(&[8], ());
                let section = arr.section([1i32, 3, 6]);
                assert_eq!(section.members().len(), 3);
                section.send(co.ctx(), MemberMsg::Poke);
                section.send(co.ctx(), MemberMsg::Poke);
                let done = co.ctx().create_future::<RedData>();
                arr.send(co.ctx(), MemberMsg::Count { done });
                let weighted = co.get(&done).as_i64();
                assert_eq!(weighted, 2 * ((1 << 1) + (1 << 3) + (1 << 6)));
                co.ctx().exit();
            });
    }
}

#[test]
fn section_is_serializable_and_usable_remotely() {
    struct Relay;
    #[derive(Serialize, Deserialize)]
    enum RelayMsg {
        PokeThese { section: Section<Member> },
    }
    impl Chare for Relay {
        type Msg = RelayMsg;
        type Init = ();
        fn create(_: (), _: &mut Ctx) -> Self {
            Relay
        }
        fn receive(&mut self, msg: RelayMsg, ctx: &mut Ctx) {
            let RelayMsg::PokeThese { section } = msg;
            section.send(ctx, MemberMsg::Poke);
        }
    }
    Runtime::new(2)
        .backend(Backend::Sim(MachineModel::local(2)))
        .register::<Member>()
        .register::<Relay>()
        .run(|co| {
            let arr = co.ctx().create_array::<Member>(&[5], ());
            let relay = co.ctx().create_chare::<Relay>((), Some(1));
            relay.send(
                co.ctx(),
                RelayMsg::PokeThese {
                    section: arr.section([0i32, 4]),
                },
            );
            // The relayed pokes are asynchronous: wait for the system to
            // drain before counting.
            let quiet = co.ctx().create_future::<()>();
            co.ctx().start_quiescence(&quiet);
            co.get(&quiet);
            let done = co.ctx().create_future::<RedData>();
            arr.send(co.ctx(), MemberMsg::Count { done });
            assert_eq!(co.get(&done).as_i64(), (1 << 0) + (1 << 4));
            co.ctx().exit();
        });
}

// ---------------------------------------------------------------------------
// Sender-side per-message when-conditions
// ---------------------------------------------------------------------------

struct Gate {
    level: i64,
    log: Vec<i64>,
}

#[derive(Serialize, Deserialize)]
enum GateMsg {
    Raise(i64),
    Deliver(i64),
    Report { done: Future<Vec<i64>> },
}

impl Chare for Gate {
    type Msg = GateMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Gate {
            level: 0,
            log: Vec::new(),
        }
    }
    fn receive(&mut self, msg: GateMsg, ctx: &mut Ctx) {
        match msg {
            GateMsg::Raise(v) => self.level = v,
            GateMsg::Deliver(v) => self.log.push(v),
            GateMsg::Report { done } => ctx.send_future(&done, self.log.clone()),
        }
    }
}

#[test]
fn send_when_defers_until_predicate_holds() {
    for backend in both_backends() {
        let mut rt = Runtime::new(2).backend(backend).register::<Gate>();
        // The sender attaches "deliver only once level >= payload".
        let when_level = rt.add_msg_guard::<Gate>(|g, m| match m {
            GateMsg::Deliver(v) => g.level >= *v,
            _ => true,
        });
        rt.run(move |co| {
            let gate = co.ctx().create_chare::<Gate>((), Some(1));
            // These must wait: the gate starts at level 0.
            gate.send_when(co.ctx(), GateMsg::Deliver(5), when_level);
            gate.send_when(co.ctx(), GateMsg::Deliver(3), when_level);
            // Plain sends pass through immediately.
            gate.send(co.ctx(), GateMsg::Deliver(-1));
            // Raise the level step by step: 3 unlocks first, then 5.
            gate.send(co.ctx(), GateMsg::Raise(3));
            gate.send(co.ctx(), GateMsg::Raise(5));
            let done = co.ctx().create_future::<Vec<i64>>();
            gate.send(co.ctx(), GateMsg::Report { done });
            let log = co.get(&done);
            assert_eq!(log, vec![-1, 3, 5], "guarded order follows the levels");
            co.ctx().exit();
        });
    }
}

#[test]
fn send_when_combines_with_receiver_guard() {
    // A chare with its own guard (reject while level < 0) plus a message
    // guard; both must pass.
    struct Picky {
        level: i64,
        got: Vec<i64>,
    }
    #[derive(Serialize, Deserialize)]
    enum PickyMsg {
        Set(i64),
        Value(i64),
        Report { done: Future<Vec<i64>> },
    }
    impl Chare for Picky {
        type Msg = PickyMsg;
        type Init = ();
        fn create(_: (), _: &mut Ctx) -> Self {
            Picky {
                level: -1,
                got: Vec::new(),
            }
        }
        fn guard(&self, msg: &PickyMsg) -> bool {
            match msg {
                PickyMsg::Value(_) => self.level >= 0,
                _ => true,
            }
        }
        fn receive(&mut self, msg: PickyMsg, ctx: &mut Ctx) {
            match msg {
                PickyMsg::Set(v) => self.level = v,
                PickyMsg::Value(v) => self.got.push(v),
                PickyMsg::Report { done } => ctx.send_future(&done, self.got.clone()),
            }
        }
    }
    let mut rt = Runtime::new(2)
        .backend(Backend::Sim(MachineModel::local(2)))
        .register::<Picky>();
    let when_big = rt.add_msg_guard::<Picky>(|p, m| match m {
        PickyMsg::Value(v) => p.level >= *v,
        _ => true,
    });
    rt.run(move |co| {
        let p = co.ctx().create_chare::<Picky>((), Some(1));
        p.send_when(co.ctx(), PickyMsg::Value(2), when_big);
        p.send(co.ctx(), PickyMsg::Set(0)); // receiver guard now passes...
        p.send(co.ctx(), PickyMsg::Set(2)); // ...and the message guard too
        let done = co.ctx().create_future::<Vec<i64>>();
        p.send(co.ctx(), PickyMsg::Report { done });
        assert_eq!(co.get(&done), vec![2]);
        co.ctx().exit();
    });
}

#[test]
fn guarded_messages_survive_migration() {
    #[derive(Serialize, Deserialize)]
    struct MGate {
        level: i64,
        log: Vec<i64>,
    }
    #[derive(Serialize, Deserialize)]
    enum MGateMsg {
        Raise(i64),
        Deliver(i64),
        Hop(usize),
        Report { done: Future<(Vec<i64>, i64)> },
    }
    impl Chare for MGate {
        type Msg = MGateMsg;
        type Init = ();
        fn create(_: (), _: &mut Ctx) -> Self {
            MGate {
                level: 0,
                log: Vec::new(),
            }
        }
        fn receive(&mut self, msg: MGateMsg, ctx: &mut Ctx) {
            match msg {
                MGateMsg::Raise(v) => self.level = v,
                MGateMsg::Deliver(v) => self.log.push(v),
                MGateMsg::Hop(pe) => ctx.migrate_me(pe),
                MGateMsg::Report { done } => {
                    ctx.send_future(&done, (self.log.clone(), ctx.my_pe() as i64))
                }
            }
        }
    }
    let mut rt = Runtime::new(3)
        .backend(Backend::Sim(MachineModel::local(3)))
        .register_migratable::<MGate>();
    let when_level = rt.add_msg_guard::<MGate>(|g, m| match m {
        MGateMsg::Deliver(v) => g.level >= *v,
        _ => true,
    });
    rt.run(move |co| {
        let g = co.ctx().create_chare::<MGate>((), Some(0));
        g.send_when(co.ctx(), MGateMsg::Deliver(7), when_level);
        // The buffered guarded message must travel with the chare.
        g.send(co.ctx(), MGateMsg::Hop(2));
        g.send(co.ctx(), MGateMsg::Raise(7));
        let done = co.ctx().create_future::<(Vec<i64>, i64)>();
        g.send(co.ctx(), MGateMsg::Report { done });
        let (log, pe) = co.get(&done);
        assert_eq!(log, vec![7], "guarded message delivered after migration");
        assert_eq!(pe, 2);
        co.ctx().exit();
    });
}
