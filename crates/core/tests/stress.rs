//! Stress tests: message-count conservation, migration storms interleaved
//! with traffic, many concurrent reductions, coroutine swarms, and mixed
//! feature interaction under load.

use charm_core::prelude::*;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Migration storm: chares hop around while being hammered with increments;
// nothing may be lost.
// ---------------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct Nomad {
    count: i64,
}

#[derive(Serialize, Deserialize)]
enum NomadMsg {
    Inc,
    HopThenInc { to: usize, remaining: u32 },
    Total { done: Future<RedData> },
}

impl Chare for Nomad {
    type Msg = NomadMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Nomad { count: 0 }
    }
    fn receive(&mut self, msg: NomadMsg, ctx: &mut Ctx) {
        match msg {
            NomadMsg::Inc => self.count += 1,
            NomadMsg::HopThenInc { to, remaining } => {
                self.count += 1;
                if remaining > 0 {
                    let next = (to + 1) % ctx.num_pes();
                    ctx.this_elem::<Nomad>().send(
                        ctx,
                        NomadMsg::HopThenInc {
                            to: next,
                            remaining: remaining - 1,
                        },
                    );
                    ctx.migrate_me(to);
                }
            }
            NomadMsg::Total { done } => ctx.contribute(
                RedData::I64(self.count),
                Reducer::Sum,
                RedTarget::Future(done.id()),
            ),
        }
    }
}

#[test]
fn migration_storm_loses_nothing() {
    for backend in [Backend::Threads, Backend::Sim(MachineModel::local(4))] {
        let hops = 12u32;
        let nomads = 8;
        let incs = 25;
        let out = std::sync::Arc::new(std::sync::Mutex::new(0i64));
        let out2 = std::sync::Arc::clone(&out);
        let report = Runtime::new(4)
            .backend(backend)
            .register_migratable::<Nomad>()
            .run(move |co| {
                let arr = co.ctx().create_array::<Nomad>(&[nomads], ());
                // Kick every nomad into a hop chain while also spraying
                // plain increments that must chase them around.
                for k in 0..nomads {
                    arr.elem(k).send(
                        co.ctx(),
                        NomadMsg::HopThenInc {
                            to: (k as usize) % 4,
                            remaining: hops,
                        },
                    );
                    for _ in 0..incs {
                        arr.elem(k).send(co.ctx(), NomadMsg::Inc);
                    }
                }
                let q = co.ctx().create_future::<()>();
                co.ctx().start_quiescence(&q);
                co.get(&q);
                let done = co.ctx().create_future::<RedData>();
                arr.send(co.ctx(), NomadMsg::Total { done });
                *out2.lock().unwrap() = co.get(&done).as_i64();
                co.ctx().exit();
            });
        let total = *out.lock().unwrap();
        assert_eq!(
            total,
            nomads as i64 * (incs as i64 + hops as i64 + 1),
            "every increment must land exactly once"
        );
        assert!(report.migrations >= (hops as u64) * nomads as u64 / 2);
    }
}

// ---------------------------------------------------------------------------
// Many reductions in flight on one collection (paper §II-F: "multiple
// reductions in flight, even for the same collection").
// ---------------------------------------------------------------------------

struct Pipeliner;

#[derive(Serialize, Deserialize)]
enum PipeMsg {
    Burst { count: u32, base: Future<RedData> },
}

impl Chare for Pipeliner {
    type Msg = PipeMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Pipeliner
    }
    fn receive(&mut self, msg: PipeMsg, ctx: &mut Ctx) {
        let PipeMsg::Burst { count, base } = msg;
        // Fire `count` reductions back-to-back without waiting; they must
        // complete in order k=0.. because members contribute in sequence.
        for k in 0..count {
            let fid = charm_core::FutureId {
                pe: base.id().pe,
                seq: base.id().seq + k as u64,
            };
            ctx.contribute(RedData::I64(k as i64), Reducer::Sum, RedTarget::Future(fid));
        }
    }
}

#[test]
fn many_reductions_in_flight_complete_in_order() {
    for backend in [Backend::Threads, Backend::Sim(MachineModel::local(3))] {
        Runtime::new(3)
            .backend(backend)
            .register::<Pipeliner>()
            .run(|co| {
                let n = 40u32;
                let members = 9i64;
                let arr = co.ctx().create_array::<Pipeliner>(&[9], ());
                // Reserve a contiguous run of future ids.
                let base = co.ctx().create_future::<RedData>();
                for _ in 1..n {
                    let _: Future<RedData> = co.ctx().create_future::<RedData>();
                }
                arr.send(co.ctx(), PipeMsg::Burst { count: n, base });
                for k in 0..n {
                    let f: Future<RedData> = Future::from_raw(charm_core::FutureId {
                        pe: base.id().pe,
                        seq: base.id().seq + k as u64,
                    });
                    assert_eq!(co.get(&f).as_i64(), k as i64 * members);
                }
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// Coroutine swarm: every member runs a waiting coroutine simultaneously.
// ---------------------------------------------------------------------------

struct Swarm {
    tokens: usize,
}

#[derive(Serialize, Deserialize)]
enum SwarmMsg {
    Go { done: Future<RedData> },
    Token,
}

impl Chare for Swarm {
    type Msg = SwarmMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Swarm { tokens: 0 }
    }
    fn receive(&mut self, msg: SwarmMsg, ctx: &mut Ctx) {
        match msg {
            SwarmMsg::Go { done } => {
                // Send a token to the next member, then wait for my own.
                let n = 24;
                let me = ctx.my_index().first();
                ctx.this_proxy::<Swarm>()
                    .elem((me + 1) % n)
                    .send(ctx, SwarmMsg::Token);
                ctx.go::<Swarm>(move |co| {
                    co.wait(|s: &Swarm| s.tokens >= 1);
                    co.ctx().contribute_barrier(RedTarget::Future(done.id()));
                });
            }
            SwarmMsg::Token => self.tokens += 1,
        }
    }
}

#[test]
fn coroutine_swarm_all_wake() {
    for backend in [Backend::Threads, Backend::Sim(MachineModel::local(4))] {
        Runtime::new(4)
            .backend(backend)
            .register::<Swarm>()
            .run(|co| {
                let arr = co.ctx().create_array::<Swarm>(&[24], ());
                let done = co.ctx().create_future::<RedData>();
                arr.send(co.ctx(), SwarmMsg::Go { done });
                assert_eq!(co.get(&done), RedData::Unit);
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// Counter conservation: at clean exit, sent == processed (nothing dropped).
// ---------------------------------------------------------------------------

#[test]
fn message_counters_conserved_at_quiescence() {
    let report = Runtime::new(4)
        .backend(Backend::Sim(MachineModel::local(4)))
        .meter_compute(false)
        .register::<Nomad>()
        .run(|co| {
            let arr = co.ctx().create_array::<Nomad>(&[12], ());
            for k in 0..12 {
                for _ in 0..10 {
                    arr.elem(k).send(co.ctx(), NomadMsg::Inc);
                }
            }
            let q = co.ctx().create_future::<()>();
            co.ctx().start_quiescence(&q);
            co.get(&q);
            co.ctx().exit();
        });
    assert!(report.clean_exit);
    assert!(report.msgs >= 120);
}
