//! Fault-tolerance tests (`--features analyze`, DESIGN.md §8): buddy
//! checkpointing, PE-failure injection and automatic restart-recovery.
//!
//! The workhorse is a ring stencil whose result is schedule-independent:
//! each round every element ships its value to its right neighbor and
//! combines the value arriving from the left, with a quiescence wait
//! between rounds. Killing a PE mid-stencil and recovering from the buddy
//! checkpoint must reproduce the fault-free run bit for bit — including
//! each element's full per-round history.

#![cfg(feature = "analyze")]

use std::sync::{Arc, Mutex};

use charm_core::analyze::InjectFault;
use charm_core::prelude::*;
use charm_core::{CollectionId, RunError, Store};
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

const N: i32 = 8;
const NPES: usize = 4;
const ROUNDS: i64 = 6;

// ---------------------------------------------------------------------------
// The ring stencil chare.
// ---------------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct Ring {
    cur: i64,
    rounds_done: i64,
    hist: Vec<i64>,
    sent: bool,
    recv: Option<i64>,
}

#[derive(Serialize, Deserialize)]
enum RingMsg {
    /// One stencil round: ship `cur` to the right neighbor.
    DoRound,
    /// The left neighbor's pre-round value.
    Shift(i64),
    /// Reply with the number of completed rounds.
    RoundsDone,
    /// Reply with the committed per-round history.
    Hist,
}

impl Chare for Ring {
    type Msg = RingMsg;
    type Init = ();
    fn create(_: (), ctx: &mut Ctx) -> Self {
        Ring {
            cur: ctx.my_index().first() as i64 + 1,
            rounds_done: 0,
            hist: Vec::new(),
            sent: false,
            recv: None,
        }
    }
    fn receive(&mut self, msg: RingMsg, ctx: &mut Ctx) {
        match msg {
            RingMsg::DoRound => {
                let right = ((ctx.my_index().first() + 1) % N) as usize;
                let arr = ctx.this_proxy::<Ring>();
                arr.elem(right).send(ctx, RingMsg::Shift(self.cur));
                self.sent = true;
            }
            RingMsg::Shift(v) => self.recv = Some(v),
            RingMsg::RoundsDone => ctx.reply(self.rounds_done),
            RingMsg::Hist => {
                let h = self.hist.clone();
                ctx.reply(h);
            }
        }
        // A round commits only once this element has both shipped its own
        // value and received the neighbor's — so the result is independent
        // of the DoRound/Shift arrival order within the round.
        if self.sent {
            if let Some(v) = self.recv.take() {
                self.sent = false;
                self.cur = self.cur * 3 + v;
                self.rounds_done += 1;
                self.hist.push(self.cur);
            }
        }
    }
}

/// What the stencil must compute, derived sequentially on the host.
fn expected_hists(rounds: i64) -> Vec<Vec<i64>> {
    let n = N as usize;
    let mut cur: Vec<i64> = (0..n).map(|i| i as i64 + 1).collect();
    let mut hists = vec![Vec::new(); n];
    for _ in 0..rounds {
        let prev = cur.clone();
        for (i, h) in hists.iter_mut().enumerate() {
            cur[i] = prev[i] * 3 + prev[(i + n - 1) % n];
            h.push(cur[i]);
        }
    }
    hists
}

/// Drive rounds `from..ROUNDS` (QD between rounds), then collect every
/// element's history into `out` and exit. Used both by the first
/// incarnation (from 0) and by the recovery entry (from wherever the
/// restored checkpoint left off).
fn drive(co: &mut Co<Main>, arr: &Proxy<Ring>, from: i64, out: &Arc<Mutex<Vec<Vec<i64>>>>) {
    for _ in from..ROUNDS {
        arr.send(co.ctx(), RingMsg::DoRound);
        let q = co.ctx().create_future::<()>();
        co.ctx().start_quiescence(&q);
        co.get(&q);
    }
    let mut hists = Vec::new();
    for i in 0..N as usize {
        let f = arr.elem(i).call::<Vec<i64>>(co.ctx(), RingMsg::Hist);
        hists.push(co.get(&f));
    }
    *out.lock().unwrap() = hists;
    co.ctx().exit();
}

fn restored_ring() -> Proxy<Ring> {
    // The first (and only) collection created by PE 0.
    Proxy::<Ring>::restored(CollectionId { creator: 0, seq: 0 })
}

/// One sim stencil run; `kill` injects a PE-1 failure, `seed` permutes the
/// delivery schedule. Returns (histories, report, stale-discard total,
/// probe findings).
fn stencil_run(kill: bool, seed: Option<u64>) -> (Vec<Vec<i64>>, RunReport, u64, Vec<String>) {
    let rt = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .meter_compute(false)
        .register_migratable::<Ring>()
        .auto_checkpoint(1, Store::Memory);
    let (mut rt, probe) = if kill {
        // PE 1 hosts elements 2 and 3 (Block placement) and sees two
        // QD-counted deliveries per round plus two inserts, so the 11th
        // delivery lands mid-round with several committed generations
        // behind it.
        rt.analyze_inject(InjectFault::KillPe {
            pe: 1,
            after_nth: 10,
        })
    } else {
        rt.analyze_probe()
    };
    if let Some(s) = seed {
        rt = rt.permute_schedule(s);
    }
    let out = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let rt = rt.recover_with(move |co| {
        let arr = restored_ring();
        // Discover progress from restored chare state — coroutine stacks
        // (the first incarnation's driver) are not recovered.
        let f = arr.elem(0usize).call::<i64>(co.ctx(), RingMsg::RoundsDone);
        let from = co.get(&f);
        drive(co, &arr, from, &sink);
    });
    let sink = Arc::clone(&out);
    let report = rt.run(move |co| {
        let arr = co.ctx().create_array::<Ring>(&[N], ());
        drive(co, &arr, 0, &sink);
    });
    let stale: u64 = report.pe_stats.iter().map(|p| p.stale_discarded).sum();
    let hists = out.lock().unwrap().clone();
    (hists, report, stale, probe.findings())
}

/// The acceptance test: a PE killed mid-stencil recovers from the buddy
/// checkpoint and finishes bit-identical to the fault-free run. No
/// stale-epoch envelope may reach a chare (the detector would flag it),
/// but some must have been discarded — the kill strands the dead round's
/// traffic. Schedule coverage for the recovery protocol lives in the
/// exhaustive `charm-check` test below, which replaced this test's former
/// 16-seed permutation sweep.
#[test]
fn killed_pe_recovers_bit_identical() {
    let expected = expected_hists(ROUNDS);
    let (hists, report, stale, findings) = stencil_run(false, None);
    assert!(findings.is_empty(), "fault-free findings: {findings:?}");
    assert_eq!(report.recoveries, 0);
    assert_eq!(stale, 0, "no recovery, so nothing to discard");
    assert_eq!(hists, expected, "fault-free baseline diverged");

    let (hists, report, stale, findings) = stencil_run(true, None);
    assert!(
        findings.is_empty(),
        "detector findings after recovery: {findings:?}"
    );
    assert_eq!(report.recoveries, 1, "expected one restart");
    assert!(report.clean_exit, "no clean exit");
    assert!(stale > 0, "the kill must strand pre-recovery traffic");
    assert_eq!(
        hists, expected,
        "recovered run diverged from the fault-free result"
    );
}

// ---------------------------------------------------------------------------
// Exhaustive exploration of kill + recovery (DESIGN.md §11).
// ---------------------------------------------------------------------------

/// A two-element ring for the model checker: same stencil rule as `Ring`,
/// sized so the checkpoint/kill/recovery protocol's full schedule space
/// fits in an exhaustive exploration.
#[derive(Serialize, Deserialize)]
struct MiniRing {
    cur: i64,
    rounds_done: i64,
    hist: Vec<i64>,
    sent: bool,
    recv: Option<i64>,
}

impl Chare for MiniRing {
    type Msg = RingMsg;
    type Init = ();
    fn create(_: (), ctx: &mut Ctx) -> Self {
        MiniRing {
            cur: ctx.my_index().first() as i64 + 1,
            rounds_done: 0,
            hist: Vec::new(),
            sent: false,
            recv: None,
        }
    }
    fn receive(&mut self, msg: RingMsg, ctx: &mut Ctx) {
        match msg {
            RingMsg::DoRound => {
                let right = ((ctx.my_index().first() + 1) % 2) as usize;
                let arr = ctx.this_proxy::<MiniRing>();
                arr.elem(right).send(ctx, RingMsg::Shift(self.cur));
                self.sent = true;
            }
            RingMsg::Shift(v) => self.recv = Some(v),
            RingMsg::RoundsDone => ctx.reply(self.rounds_done),
            RingMsg::Hist => {
                let h = self.hist.clone();
                ctx.reply(h);
            }
        }
        if self.sent {
            if let Some(v) = self.recv.take() {
                self.sent = false;
                self.cur = self.cur * 3 + v;
                self.rounds_done += 1;
                self.hist.push(self.cur);
            }
        }
    }
}

/// Run one stencil round (its quiescence takes the automatic checkpoint),
/// then collect and verify both histories. The recovery entry re-enters
/// here with `from == 1`, so it goes straight to collection.
fn mini_drive(co: &mut Co<Main>, arr: &Proxy<MiniRing>, from: i64) {
    for _ in from..1 {
        arr.send(co.ctx(), RingMsg::DoRound);
        let q = co.ctx().create_future::<()>();
        co.ctx().start_quiescence(&q);
        co.get(&q);
    }
    // cur = [1, 2] initially; one round of cur[i] = 3*cur[i] + left[i].
    for (i, want) in [(0usize, 5i64), (1, 7)] {
        let f = arr.elem(i).call::<Vec<i64>>(co.ctx(), RingMsg::Hist);
        assert_eq!(co.get(&f), vec![want], "element {i} history diverged");
    }
    co.ctx().exit();
}

/// Every interleaving of checkpoint, kill and recovery, proven clean:
/// `Runtime::check` explores the whole schedule space of a 2-PE
/// two-element stencil whose PE 1 is killed *after* the round-1 checkpoint
/// committed (the history collection is PE 1's 4th counted delivery, and
/// it cannot ship before the quiescence future — parked until the
/// checkpoint window closes — completes). Recovery must restore from the
/// buddy image and finish with the exact fault-free histories on every
/// schedule; the in-entry asserts make any divergence a counterexample.
#[test]
fn killed_pe_recovery_is_clean_under_exhaustive_exploration() {
    use charm_core::CheckCfg;

    let (rt, _probe) = Runtime::new(2)
        .simulated(MachineModel::local(2))
        .meter_compute(false)
        .register_migratable::<MiniRing>()
        .auto_checkpoint(1, Store::Memory)
        .analyze_inject(InjectFault::KillPe {
            pe: 1,
            after_nth: 3,
        });
    let rt = rt.recover_with(|co| {
        let arr = Proxy::<MiniRing>::restored(CollectionId { creator: 0, seq: 0 });
        let f = arr.elem(0usize).call::<i64>(co.ctx(), RingMsg::RoundsDone);
        let from = co.get(&f);
        assert_eq!(from, 1, "the checkpoint must snapshot the completed round");
        mini_drive(co, &arr, from);
    });
    let report = rt.check(
        CheckCfg {
            max_executions: 400_000,
            ..CheckCfg::default()
        },
        |co| {
            let arr = co.ctx().create_array::<MiniRing>(&[2], ());
            mini_drive(co, &arr, 0);
        },
    );
    assert!(
        !report.truncated,
        "kill/recovery exploration did not exhaust the space in {} executions",
        report.executions
    );
    assert!(
        report.counterexample.is_none(),
        "kill/recovery produced a counterexample: {:?}",
        report.counterexample
    );
    println!(
        "kill/recovery: {} executions over {} equivalence classes",
        report.executions, report.equivalence_classes
    );
}

/// Killing a PE without checkpointing armed is a typed error, not a panic.
#[test]
fn kill_without_checkpointing_is_recovery_impossible() {
    let (rt, _probe) = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .meter_compute(false)
        .register_migratable::<Ring>()
        .analyze_inject(InjectFault::KillPe {
            pe: 1,
            after_nth: 0,
        });
    let out = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let err = rt
        .try_run(move |co| {
            let arr = co.ctx().create_array::<Ring>(&[N], ());
            drive(co, &arr, 0, &sink);
        })
        .unwrap_err();
    assert!(
        matches!(err, RunError::RecoveryImpossible { .. }),
        "unexpected error: {err}"
    );
}

// ---------------------------------------------------------------------------
// Threads backend: a panicking PE thread is caught and recovered.
// ---------------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct Bump {
    total: i64,
}

#[derive(Serialize, Deserialize)]
enum BumpMsg {
    Add(i64),
    Total,
}

impl Chare for Bump {
    type Msg = BumpMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Bump { total: 0 }
    }
    fn receive(&mut self, msg: BumpMsg, ctx: &mut Ctx) {
        match msg {
            BumpMsg::Add(v) => self.total += v,
            BumpMsg::Total => ctx.reply(self.total),
        }
    }
}

fn restored_bump(seq: u32) -> Proxy<Bump> {
    Proxy::<Bump>::restored(CollectionId { creator: 0, seq }).elem(Index::SINGLE)
}

/// Threads backend: phase 1 touches only PEs 0/2/3 with point-to-point
/// sends and checkpoints at quiescence; phase 2's first delivery on PE 1
/// (an injected kill with `after_nth: 0`) panics that PE's thread. The
/// supervisor must catch it, restore phase-1 state from the buddy images
/// (PE 1's own store died with it; PE 2 holds its copy) and run the
/// recovery entry — without the process dying.
#[test]
fn threads_pe_panic_recovers_from_buddy_checkpoint() {
    let (rt, probe) = Runtime::new(NPES)
        .register_migratable::<Bump>()
        .auto_checkpoint(1, Store::Memory)
        .analyze_inject(InjectFault::KillPe {
            pe: 1,
            after_nth: 0,
        });
    let done = Arc::new(Mutex::new(false));
    let flag = Arc::clone(&done);
    let rt = rt.recover_with(move |co| {
        // Phase-1 state must have survived via the buddy images.
        for (seq, want) in [(0, 10), (1, 12), (2, 13)] {
            let c = restored_bump(seq);
            let f = c.call::<i64>(co.ctx(), BumpMsg::Total);
            assert_eq!(co.get(&f), want, "chare seq {seq} lost its state");
        }
        // Re-do phase 2; the kill only fires in the first incarnation.
        let d = co.ctx().create_chare::<Bump>((), Some(1));
        d.send(co.ctx(), BumpMsg::Add(5));
        let f = d.call::<i64>(co.ctx(), BumpMsg::Total);
        assert_eq!(co.get(&f), 5);
        *flag.lock().unwrap() = true;
        co.ctx().exit();
    });
    let report = rt.run(|co| {
        // Phase 1: point-to-point only, so PE 1 sees no QD-counted
        // delivery before the checkpoint commits.
        for pe in [0usize, 2, 3] {
            let c = co.ctx().create_chare::<Bump>((), Some(pe));
            c.send(co.ctx(), BumpMsg::Add(10 + pe as i64));
        }
        let q = co.ctx().create_future::<()>();
        co.ctx().start_quiescence(&q);
        co.get(&q);
        // Phase 2: the first QD-counted delivery on PE 1 is this insert —
        // and the injected kill.
        let d = co.ctx().create_chare::<Bump>((), Some(1));
        d.send(co.ctx(), BumpMsg::Add(5));
        let f = d.call::<i64>(co.ctx(), BumpMsg::Total);
        co.get(&f);
        co.ctx().exit();
    });
    assert_eq!(report.recoveries, 1, "expected exactly one restart");
    assert!(report.clean_exit);
    assert!(
        *done.lock().unwrap(),
        "the recovery entry never ran to completion"
    );
    let findings = probe.findings();
    assert!(findings.is_empty(), "detector findings: {findings:?}");
}

/// A hung PE (idle past the timeout) without recovery armed is a typed
/// error, not a thread panic that kills the process.
#[test]
fn hang_is_a_typed_error_when_recovery_is_unarmed() {
    let err = Runtime::new(2)
        .idle_timeout(std::time::Duration::from_millis(100))
        .try_run(|co| {
            let f = co.ctx().create_future::<()>();
            co.get(&f); // never fulfilled
            co.ctx().exit();
        })
        .unwrap_err();
    assert!(matches!(err, RunError::Hang { .. }), "unexpected: {err}");
}

// ---------------------------------------------------------------------------
// Disk generations: automatic Store::Disk checkpoints restore onto a
// different PE count.
// ---------------------------------------------------------------------------

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("charmrs-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Every 4th quiescence writes an epoch-numbered directory; a fresh
/// runtime on a different PE count restores the newest complete generation
/// (here: rounds 0–3 done), finishes the remaining rounds and matches the
/// expected result exactly.
#[test]
fn disk_generations_restore_onto_different_pe_count() {
    let root = tmpdir("disk");
    let out = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .meter_compute(false)
        .register_migratable::<Ring>()
        .auto_checkpoint(4, Store::Disk(root.clone()))
        .run(move |co| {
            let arr = co.ctx().create_array::<Ring>(&[N], ());
            drive(co, &arr, 0, &sink);
        });
    assert_eq!(out.lock().unwrap().clone(), expected_hists(ROUNDS));

    // 6 QD rounds at cadence 4 → one generation, minted at the 4th
    // quiescence with rounds 0–3 committed.
    let (epoch, dir) =
        charm_core::checkpoint::latest_complete_dir(&root).expect("no complete generation");
    assert_eq!(epoch, 1);

    // Tamper with a *newer* torn generation: restore must skip it.
    let torn = root.join("ckpt-9");
    std::fs::create_dir_all(&torn).unwrap();
    std::fs::write(torn.join("pe0.ckpt"), b"garbage").unwrap();
    let (epoch2, _) = charm_core::checkpoint::latest_complete_dir(&root).unwrap();
    assert_eq!(epoch2, 1, "a torn newer generation must be skipped");

    let out = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    Runtime::new(5)
        .simulated(MachineModel::local(5))
        .meter_compute(false)
        .register_migratable::<Ring>()
        .run_restored(dir, move |co| {
            let arr = restored_ring();
            let f = arr.elem(0usize).call::<i64>(co.ctx(), RingMsg::RoundsDone);
            let from = co.get(&f);
            assert_eq!(from, 4, "the generation snapshots rounds 0-3");
            drive(co, &arr, from, &sink);
        });
    assert_eq!(
        out.lock().unwrap().clone(),
        expected_hists(ROUNDS),
        "restore onto 5 PEs must preserve every element's history"
    );
    let _ = std::fs::remove_dir_all(root);
}

/// A corrupt checkpoint fails the run up front with the typed restore
/// error (surfaced through `run`'s panic message here).
#[test]
#[should_panic(expected = "restore failed")]
fn corrupt_checkpoint_fails_restore_with_typed_error() {
    let dir = tmpdir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("pe0.ckpt"), b"not a checkpoint").unwrap();
    Runtime::new(1)
        .simulated(MachineModel::local(1))
        .register_migratable::<Ring>()
        .run_restored(dir, |co| co.ctx().exit());
}
