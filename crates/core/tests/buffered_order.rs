//! Arrival-order delivery of when-guard-buffered messages: the scheduler
//! keeps deferred messages in a deque and drains them front-first, so a
//! burst buffered behind a guard must come out exactly in send order —
//! including when the buffer migrates with its chare.

use charm_core::prelude::*;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

fn both_backends() -> Vec<Backend> {
    vec![Backend::Threads, Backend::Sim(MachineModel::local(2))]
}

struct Hold {
    open: bool,
    log: Vec<i64>,
}

#[derive(Serialize, Deserialize)]
enum HoldMsg {
    Tick(i64),
    Open,
    Report { done: Future<Vec<i64>> },
}

impl Chare for Hold {
    type Msg = HoldMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Hold {
            open: false,
            log: Vec::new(),
        }
    }
    fn guard(&self, msg: &HoldMsg) -> bool {
        match msg {
            HoldMsg::Tick(_) => self.open,
            _ => true,
        }
    }
    fn receive(&mut self, msg: HoldMsg, ctx: &mut Ctx) {
        match msg {
            HoldMsg::Tick(i) => self.log.push(i),
            HoldMsg::Open => self.open = true,
            HoldMsg::Report { done } => ctx.send_future(&done, self.log.clone()),
        }
    }
}

#[test]
fn buffered_burst_drains_in_arrival_order() {
    const N: i64 = 200;
    for backend in both_backends() {
        Runtime::new(2)
            .backend(backend)
            .register::<Hold>()
            .run(|co| {
                let h = co.ctx().create_chare::<Hold>((), Some(1));
                for i in 0..N {
                    h.send(co.ctx(), HoldMsg::Tick(i));
                }
                h.send(co.ctx(), HoldMsg::Open);
                let done = co.ctx().create_future::<Vec<i64>>();
                h.send(co.ctx(), HoldMsg::Report { done });
                let log = co.get(&done);
                let expected: Vec<i64> = (0..N).collect();
                assert_eq!(log, expected, "buffered ticks replayed out of order");
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// ...and the order survives migration (the buffer travels with the chare).
// ---------------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct MHold {
    open: bool,
    log: Vec<i64>,
}

#[derive(Serialize, Deserialize)]
enum MHoldMsg {
    Tick(i64),
    Hop(usize),
    Open,
    Report { done: Future<(Vec<i64>, i64)> },
}

impl Chare for MHold {
    type Msg = MHoldMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        MHold {
            open: false,
            log: Vec::new(),
        }
    }
    fn guard(&self, msg: &MHoldMsg) -> bool {
        match msg {
            MHoldMsg::Tick(_) => self.open,
            _ => true,
        }
    }
    fn receive(&mut self, msg: MHoldMsg, ctx: &mut Ctx) {
        match msg {
            MHoldMsg::Tick(i) => self.log.push(i),
            MHoldMsg::Hop(pe) => ctx.migrate_me(pe),
            MHoldMsg::Open => self.open = true,
            MHoldMsg::Report { done } => {
                ctx.send_future(&done, (self.log.clone(), ctx.my_pe() as i64))
            }
        }
    }
}

#[test]
fn buffered_order_survives_migration() {
    const N: i64 = 50;
    Runtime::new(3)
        .backend(Backend::Sim(MachineModel::local(3)))
        .register_migratable::<MHold>()
        .run(|co| {
            let h = co.ctx().create_chare::<MHold>((), Some(0));
            for i in 0..N {
                h.send(co.ctx(), MHoldMsg::Tick(i));
            }
            // The whole buffered burst rides along to PE 2, then opens.
            h.send(co.ctx(), MHoldMsg::Hop(2));
            h.send(co.ctx(), MHoldMsg::Open);
            let done = co.ctx().create_future::<(Vec<i64>, i64)>();
            h.send(co.ctx(), MHoldMsg::Report { done });
            let (log, pe) = co.get(&done);
            let expected: Vec<i64> = (0..N).collect();
            assert_eq!(log, expected, "migrated buffer replayed out of order");
            assert_eq!(pe, 2);
            co.ctx().exit();
        });
}
