//! Tracing & metrics integration tests (DESIGN.md §7).
//!
//! Drives real runs on the sim backend at each trace level and checks the
//! `RunReport` surface: counters are populated even with tracing off, full
//! capture yields well-formed event rings whose busy/idle/overhead
//! decomposition accounts for the whole wall clock, a tiny ring drops the
//! oldest events (and says so), user marks flow end to end, and the Chrome
//! exporter's output survives the crate's own strict JSON parser.

use charm_core::prelude::*;
use charm_sim::MachineModel;
use charm_trace::json::{parse, Value};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Workload: a counter on PE 1, bumped from main on PE 0 — every bump is a
// remote send, so both PEs see traffic, entries, and idle gaps.
// ---------------------------------------------------------------------------

struct Counter {
    total: i64,
}

#[derive(Serialize, Deserialize)]
enum CounterMsg {
    Bump(i64),
    Total,
}

impl Chare for Counter {
    type Msg = CounterMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Counter { total: 0 }
    }
    fn receive(&mut self, msg: CounterMsg, ctx: &mut Ctx) {
        match msg {
            CounterMsg::Bump(v) => self.total += v,
            CounterMsg::Total => ctx.reply(self.total),
        }
    }
}

fn run_with(trace: TraceConfig, bumps: i64) -> RunReport {
    Runtime::new(2)
        .simulated(MachineModel::local(2))
        .trace(trace)
        .register::<Counter>()
        .run(move |co| {
            co.ctx().trace_mark("phase:bump");
            let c = co.ctx().create_chare::<Counter>((), Some(1));
            for i in 0..bumps {
                c.send(co.ctx(), CounterMsg::Bump(i));
            }
            co.ctx().trace_mark("phase:collect");
            let f = c.call::<i64>(co.ctx(), CounterMsg::Total);
            assert_eq!(co.get(&f), (0..bumps).sum::<i64>());
            co.ctx().exit();
        })
}

#[test]
fn counters_populate_report_even_when_tracing_off() {
    let r = run_with(TraceConfig::off(), 8);
    assert!(r.clean_exit);
    assert!(r.trace.is_none(), "level Off must not carry a trace");
    assert_eq!(r.pe_stats.len(), 2, "one PePerf block per PE, always");
    let sent: u64 = r.pe_stats.iter().map(|p| p.msgs_sent).sum();
    let processed: u64 = r.pe_stats.iter().map(|p| p.msgs_processed).sum();
    assert!(sent >= 8, "bumps must be counted, got {sent}");
    assert_eq!(sent, processed, "clean exit ⇒ send/process balance");
    assert!(r.msgs >= 8 && r.entries >= 8);
    assert!(
        r.pe_stats.iter().any(|p| p.bytes_sent_remote > 0),
        "cross-PE bumps move bytes"
    );
    assert!(r.bytes > 0 && r.time.as_nanos() > 0);
}

#[test]
fn full_capture_validates_and_decomposition_sums_to_wall() {
    let r = run_with(TraceConfig::full(), 32);
    assert!(r.clean_exit);
    let trace = r.trace.expect("full level must carry a trace");
    trace.validate().expect("event rings must be well-formed");
    for p in &r.pe_stats {
        assert!(p.wall_ns > 0, "PE {} never ticked", p.pe);
        let sum = p.busy_ns + p.idle_ns + p.overhead_ns;
        // The sim backend attributes every virtual ns at charge time, so
        // the decomposition is exact — not just within the 5% budget.
        assert_eq!(
            sum, p.wall_ns,
            "PE {}: busy {} + idle {} + overhead {} != wall {}",
            p.pe, p.busy_ns, p.idle_ns, p.overhead_ns, p.wall_ns
        );
    }
    assert!(
        r.pe_stats.iter().any(|p| p.busy_ns > 0),
        "somebody executed entries"
    );
    assert!(
        r.pe_stats.iter().any(|p| p.idle_ns > 0),
        "a 2-PE ping workload must leave idle gaps"
    );
}

#[test]
fn tiny_ring_drops_oldest_and_reports_the_count() {
    let cfg = TraceConfig::full().ring_capacity(8);
    let r = run_with(cfg, 100);
    let trace = r.trace.expect("full level must carry a trace");
    trace
        .validate()
        .expect("a wrapped ring is still well-formed");
    let total_events: usize = trace.pes.iter().map(|t| t.events.len()).sum();
    assert!(total_events > 0, "the tail must survive the wrap");
    for t in &trace.pes {
        assert!(
            t.events.len() <= 8,
            "PE {} kept {} events in a ring of 8",
            t.perf.pe,
            t.events.len()
        );
    }
    let dropped: u64 = trace.pes.iter().map(|t| t.perf.events_dropped).sum();
    assert!(dropped > 0, "100 bumps must overflow an 8-slot ring");
    // What survives is the newest tail: the first retained event on the
    // busiest PE must start later than a fresh ring's first event would.
    let full = run_with(TraceConfig::full(), 100)
        .trace
        .expect("reference run");
    for (wrapped, complete) in trace.pes.iter().zip(&full.pes) {
        if wrapped.perf.events_dropped > 0 {
            let first_kept = wrapped.events.first().map(|e| e.ts_ns).unwrap_or(0);
            let first_ever = complete.events.first().map(|e| e.ts_ns).unwrap_or(0);
            assert!(
                first_kept >= first_ever,
                "PE {}: wraparound must discard from the front",
                wrapped.perf.pe
            );
        }
    }
}

#[test]
fn trace_marks_flow_into_the_event_stream() {
    let r = run_with(TraceConfig::full(), 4);
    let trace = r.trace.expect("full level must carry a trace");
    let marks: Vec<&str> = trace
        .pes
        .iter()
        .flat_map(|t| &t.events)
        .filter_map(|e| match &e.kind {
            charm_trace::EventKind::Mark { label } => Some(label.as_str()),
            _ => None,
        })
        .collect();
    assert!(marks.contains(&"phase:bump") && marks.contains(&"phase:collect"));
    // Counters level must not record marks (no ring exists).
    let r = run_with(TraceConfig::counters(), 4);
    let trace = r.trace.expect("counters level still reports aggregates");
    assert!(trace.pes.iter().all(|t| t.events.is_empty()));
}

#[test]
fn chrome_export_round_trips_through_the_strict_parser() {
    let r = run_with(TraceConfig::full(), 16);
    let trace = r.trace.expect("full level must carry a trace");
    let doc = parse(&trace.chrome_json()).expect("exporter must emit valid JSON");
    let arr = doc.as_arr().expect("top level is an array");
    // One named track per PE.
    let tracks: Vec<&Value> = arr
        .iter()
        .filter(|o| o.get("name").and_then(Value::as_str) == Some("thread_name"))
        .collect();
    assert_eq!(tracks.len(), 2);
    // Every row is a well-formed trace event: a phase plus track ids.
    for o in arr {
        assert!(o.get("ph").and_then(Value::as_str).is_some());
        assert!(o.get("pid").and_then(Value::as_f64).is_some());
        assert!(o.get("tid").and_then(Value::as_f64).is_some());
    }
    // Entry spans made it out as complete events with µs durations.
    assert!(arr.iter().any(|o| {
        o.get("ph").and_then(Value::as_str) == Some("X")
            && o.get("cat").and_then(Value::as_str) == Some("entry")
            && o.get("dur").and_then(Value::as_f64).is_some()
    }));
    // The user marks survived export.
    assert!(arr
        .iter()
        .any(|o| o.get("name").and_then(Value::as_str) == Some("phase:bump")));
}
