//! Model-checker tests (`--features analyze`, DESIGN.md §11): exhaustive
//! schedule exploration with DPOR, counterexample shrinking and
//! deterministic replay, driven through `Runtime::check`.
//!
//! The acceptance workload is a 2-PE histogram: one bin chare collects
//! samples flooded from a per-PE source group, and the completion future
//! asserts the exact bin counts inside the entry — any schedule that
//! breaks the histogram panics and becomes a counterexample. Exploration
//! must exhaust the space (`truncated == false`), DPOR must visit
//! strictly fewer executions than naive enumeration, and a seeded
//! detector violation must shrink to a replayable schedule artifact.

#![cfg(feature = "analyze")]

use std::sync::Arc;

use charm_core::analyze::InjectFault;
use charm_core::prelude::*;
use charm_core::CheckCfg;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

const NPES: usize = 2;

// ---------------------------------------------------------------------------
// Histogram workload: per-PE sources flood one bin chare.
// ---------------------------------------------------------------------------

const BINS: usize = 2;
const PER_SRC: i64 = 2;

struct Hist {
    counts: Vec<i64>,
    got: usize,
    expect: usize,
    notify: Option<Future<Vec<i64>>>,
}

#[derive(Serialize, Deserialize)]
enum HistMsg {
    Sample(i64),
    WhenDone {
        expect: usize,
        notify: Future<Vec<i64>>,
    },
}

impl Chare for Hist {
    type Msg = HistMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Hist {
            counts: vec![0; BINS],
            got: 0,
            expect: usize::MAX,
            notify: None,
        }
    }
    fn receive(&mut self, msg: HistMsg, ctx: &mut Ctx) {
        match msg {
            HistMsg::Sample(v) => {
                self.counts[(v as usize) % BINS] += 1;
                self.got += 1;
            }
            HistMsg::WhenDone { expect, notify } => {
                self.expect = expect;
                self.notify = Some(notify);
            }
        }
        if self.got == self.expect {
            if let Some(f) = self.notify.take() {
                let counts = self.counts.clone();
                ctx.send_future(&f, counts);
            }
        }
    }
}

struct Src;

#[derive(Serialize, Deserialize)]
enum SrcMsg {
    Go { hist: Proxy<Hist>, per_src: i64 },
}

impl Chare for Src {
    type Msg = SrcMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Src
    }
    fn receive(&mut self, msg: SrcMsg, ctx: &mut Ctx) {
        let SrcMsg::Go { hist, per_src } = msg;
        for k in 0..per_src {
            hist.send(ctx, HistMsg::Sample(ctx.my_pe() as i64 * per_src + k));
        }
    }
}

/// Every schedule must produce the same bin counts; the assert inside the
/// entry turns any divergence into a panic, i.e. a counterexample.
fn histogram_program(co: &mut Co<Main>) {
    let hist = co.ctx().create_chare::<Hist>((), Some(1));
    let srcs = co.ctx().create_group::<Src>(());
    let done = co.ctx().create_future::<Vec<i64>>();
    srcs.send(
        co.ctx(),
        SrcMsg::Go {
            hist: hist.clone(),
            per_src: PER_SRC,
        },
    );
    hist.send(
        co.ctx(),
        HistMsg::WhenDone {
            expect: NPES * PER_SRC as usize,
            notify: done,
        },
    );
    // With PER_SRC samples per PE and values pe*PER_SRC + k, the samples
    // are 0..NPES*PER_SRC and land round-robin: NPES per bin, exactly.
    let counts = co.get(&done);
    assert_eq!(counts, vec![NPES as i64; BINS], "histogram diverged");
    co.ctx().exit();
}

fn hist_runtime() -> Runtime {
    Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .meter_compute(false)
        .register::<Hist>()
        .register::<Src>()
}

/// The headline acceptance test: `Runtime::check` exhausts the 2-PE
/// histogram's schedule space — `truncated == false` with no
/// counterexample — and reports its happens-before equivalence classes.
#[test]
fn exhaustive_histogram_exploration_is_clean() {
    let report = hist_runtime().check(
        CheckCfg {
            max_executions: 200_000,
            ..CheckCfg::default()
        },
        histogram_program,
    );
    assert!(
        !report.truncated,
        "histogram exploration did not exhaust the space in {} executions",
        report.executions
    );
    assert!(
        report.counterexample.is_none(),
        "clean histogram produced a counterexample: {:?}",
        report.counterexample
    );
    assert!(report.executions >= 1);
    assert!(report.equivalence_classes >= 1);
    assert!(report.equivalence_classes as u64 <= report.executions);
    println!(
        "histogram: {} executions over {} equivalence classes",
        report.executions, report.equivalence_classes
    );
}

// ---------------------------------------------------------------------------
// DPOR vs. naive enumeration.
// ---------------------------------------------------------------------------

struct Counter {
    total: i64,
}

#[derive(Serialize, Deserialize)]
enum CounterMsg {
    Bump(i64),
    Total,
}

impl Chare for Counter {
    type Msg = CounterMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Counter { total: 0 }
    }
    fn receive(&mut self, msg: CounterMsg, ctx: &mut Ctx) {
        match msg {
            CounterMsg::Bump(v) => self.total += v,
            CounterMsg::Total => ctx.reply(self.total),
        }
    }
}

/// Two counters on different PEs: deliveries to PE 0 and PE 1 commute, so
/// DPOR collapses their interleavings while naive enumeration pays for
/// every shuffle.
fn two_counter_program(co: &mut Co<Main>) {
    let a = co.ctx().create_chare::<Counter>((), Some(1));
    let b = co.ctx().create_chare::<Counter>((), Some(0));
    a.send(co.ctx(), CounterMsg::Bump(1));
    b.send(co.ctx(), CounterMsg::Bump(2));
    let fa = a.call::<i64>(co.ctx(), CounterMsg::Total);
    let fb = b.call::<i64>(co.ctx(), CounterMsg::Total);
    assert_eq!(co.get(&fa), 1);
    assert_eq!(co.get(&fb), 2);
    co.ctx().exit();
}

fn counter_runtime() -> Runtime {
    Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .meter_compute(false)
        .register::<Counter>()
}

/// DPOR visits strictly fewer executions than naive enumeration of the
/// same program, without losing coverage: when both exhaust, they agree
/// on the number of happens-before equivalence classes.
#[test]
fn dpor_visits_fewer_executions_than_naive() {
    let dpor = counter_runtime().check(
        CheckCfg {
            max_executions: 100_000,
            dpor: true,
            ..CheckCfg::default()
        },
        two_counter_program,
    );
    assert!(!dpor.truncated, "DPOR run truncated at {}", dpor.executions);
    assert!(
        dpor.counterexample.is_none(),
        "clean program produced a counterexample: {:?}",
        dpor.counterexample
    );

    let naive = counter_runtime().check(
        CheckCfg {
            max_executions: 100_000,
            dpor: false,
            ..CheckCfg::default()
        },
        two_counter_program,
    );
    println!(
        "dpor: {} executions / {} classes; naive: {} executions / {} classes (truncated: {})",
        dpor.executions,
        dpor.equivalence_classes,
        naive.executions,
        naive.equivalence_classes,
        naive.truncated
    );
    assert!(
        dpor.executions < naive.executions,
        "DPOR ({}) must beat naive enumeration ({})",
        dpor.executions,
        naive.executions
    );
    if !naive.truncated {
        assert_eq!(
            dpor.equivalence_classes, naive.equivalence_classes,
            "DPOR missed equivalence classes naive enumeration found"
        );
    }
}

// ---------------------------------------------------------------------------
// Seeded violation → shrunk, replayable artifact.
// ---------------------------------------------------------------------------

/// No asserts on the total here: the target failure is the armed
/// detector's double-delivery finding, not an application panic.
fn bump_program(co: &mut Co<Main>) {
    let c = co.ctx().create_chare::<Counter>((), Some(1));
    for i in 0..3 {
        c.send(co.ctx(), CounterMsg::Bump(i));
    }
    let f = c.call::<i64>(co.ctx(), CounterMsg::Total);
    co.get(&f);
    co.ctx().exit();
}

fn injected_runtime(n: u64) -> Runtime {
    let (rt, _probe) = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .meter_compute(false)
        .register::<Counter>()
        .analyze_inject(InjectFault::DuplicateNth(n));
    rt
}

/// A duplicated envelope is a detector violation; `check` must catch it,
/// shrink the schedule, write the artifact, and two replays of that
/// artifact must agree bit-for-bit (same failure, same delivery/clock
/// digest). The duplicable position is an implementation detail — scan.
#[test]
fn seeded_violation_shrinks_to_a_replayable_artifact() {
    let dir = std::env::temp_dir().join(format!("charmrs-check-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let artifact = dir.join("double-delivery.schedule");

    let mut caught = None;
    for n in 0..12 {
        let report = injected_runtime(n).check(
            CheckCfg {
                max_executions: 40,
                artifact: Some(artifact.clone()),
                ..CheckCfg::default()
            },
            bump_program,
        );
        if let Some(cx) = report.counterexample {
            if cx.failure.contains("double-delivered") {
                caught = Some((n, cx));
                break;
            }
        }
    }
    let (n, cx) =
        caught.expect("no injected duplicate was caught as a violation in the first 12 positions");
    assert!(
        cx.decisions <= cx.original_len,
        "shrinking grew the schedule: {} from {}",
        cx.decisions,
        cx.original_len
    );
    let path = cx.artifact.clone().expect("no artifact was written");

    let r1 = injected_runtime(n)
        .replay_schedule(&path, bump_program)
        .expect("artifact unreadable");
    let r2 = injected_runtime(n)
        .replay_schedule(&path, bump_program)
        .expect("artifact unreadable");
    assert!(
        r1.failure
            .as_deref()
            .unwrap_or("")
            .contains("double-delivered"),
        "replay lost the violation: {:?}",
        r1.failure
    );
    assert_eq!(
        (r1.digest, r1.steps, &r1.failure),
        (r2.digest, r2.steps, &r2.failure),
        "two replays of one artifact diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Oracle plumbing and the delay-bound knob.
// ---------------------------------------------------------------------------

/// A user oracle failure is a counterexample like any other, and a
/// schedule-independent one shrinks all the way to the empty schedule.
#[test]
fn oracle_mismatch_is_a_counterexample() {
    let report = counter_runtime().check(
        CheckCfg {
            max_executions: 50,
            oracle: Some(Arc::new(|_: &RunReport| Some("forced".to_string()))),
            ..CheckCfg::default()
        },
        two_counter_program,
    );
    let cx = report
        .counterexample
        .expect("the oracle mismatch was not reported");
    assert!(
        cx.failure.starts_with("oracle:") && cx.failure.contains("forced"),
        "wrong failure class: {}",
        cx.failure
    );
    assert_eq!(
        cx.decisions, 0,
        "a schedule-independent failure must shrink to the empty schedule"
    );
}

/// A delay bound below the space's requirement truncates instead of
/// silently claiming exhaustion.
#[test]
fn delay_bound_truncates_honestly() {
    let bounded = counter_runtime().check(
        CheckCfg {
            max_executions: 100_000,
            delay_bound: Some(0),
            ..CheckCfg::default()
        },
        two_counter_program,
    );
    assert!(
        bounded.counterexample.is_none(),
        "delay-bounded run found a spurious counterexample: {:?}",
        bounded.counterexample
    );
    // Delay bound 0 admits only the default schedule; the two-counter
    // program has real concurrency, so the space cannot be exhausted.
    assert!(bounded.executions >= 1);
    assert!(
        bounded.truncated,
        "a zero delay bound cannot exhaust a concurrent program's space"
    );
}
