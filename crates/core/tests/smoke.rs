//! End-to-end smoke tests of the runtime: the paper's hello-world, futures,
//! collections and broadcasts, on both backends.

use std::sync::atomic::{AtomicUsize, Ordering};

use charm_core::prelude::*;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

fn both_backends() -> Vec<(&'static str, Backend)> {
    vec![
        ("threads", Backend::Threads),
        ("sim", Backend::Sim(MachineModel::local(4))),
    ]
}

#[test]
fn hello_world_single_chare() {
    // The thread_local trick above does not cross PE threads, so collect
    // via a future instead: create a chare, call a method, get the reply.
    for (name, backend) in both_backends() {
        let report = Runtime::new(3)
            .backend(backend)
            .register::<Echo>()
            .run(|co| {
                let proxy = co.ctx().create_chare::<Echo>(0, Some(1));
                let fut = proxy.call::<String>(co.ctx(), EchoMsg::Greet("hello".into()));
                let reply = co.get(&fut);
                assert_eq!(reply, "hello from PE 1");
                co.ctx().exit();
            });
        assert!(report.clean_exit, "backend {name}");
        assert!(report.entries >= 1);
    }
}

// ---------------------------------------------------------------------------
// Echo chare used across tests
// ---------------------------------------------------------------------------

struct Echo;

#[derive(Serialize, Deserialize)]
enum EchoMsg {
    Greet(String),
}

impl Chare for Echo {
    type Msg = EchoMsg;
    type Init = i32;
    fn create(_: i32, _: &mut Ctx) -> Self {
        Echo
    }
    fn receive(&mut self, msg: EchoMsg, ctx: &mut Ctx) {
        let EchoMsg::Greet(text) = msg;
        ctx.reply(format!("{text} from PE {}", ctx.my_pe()));
    }
}

#[test]
fn call_returns_future_ret_true_mechanism() {
    for (name, backend) in both_backends() {
        Runtime::new(4)
            .backend(backend)
            .register::<Echo>()
            .run(move |co| {
                // Launch several calls before collecting any result — the
                // paper's "do additional work, wait later" pattern.
                let mut futs = Vec::new();
                for pe in 0..4 {
                    let proxy = co.ctx().create_chare::<Echo>(0, Some(pe));
                    futs.push((
                        pe,
                        proxy.call::<String>(co.ctx(), EchoMsg::Greet(format!("msg{pe}"))),
                    ));
                }
                for (pe, f) in futs {
                    let got = co.get(&f);
                    assert_eq!(got, format!("msg{pe} from PE {pe}"), "backend {name}");
                }
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// Groups: one member per PE, broadcast + reduction
// ---------------------------------------------------------------------------

struct Counter {
    pe_value: i64,
}

#[derive(Serialize, Deserialize)]
enum CounterMsg {
    Report { target: Future<RedData> },
}

impl Chare for Counter {
    type Msg = CounterMsg;
    type Init = ();
    fn create(_: (), ctx: &mut Ctx) -> Self {
        Counter {
            pe_value: ctx.my_pe() as i64,
        }
    }
    fn receive(&mut self, msg: CounterMsg, ctx: &mut Ctx) {
        let CounterMsg::Report { target } = msg;
        ctx.contribute(
            RedData::I64(self.pe_value),
            Reducer::Sum,
            RedTarget::Future(target.id()),
        );
    }
}

#[test]
fn group_broadcast_and_sum_reduction() {
    for (name, backend) in both_backends() {
        Runtime::new(5)
            .backend(backend)
            .register::<Counter>()
            .run(move |co| {
                let group = co.ctx().create_group::<Counter>(());
                let fut = co.ctx().create_future::<RedData>();
                group.send(co.ctx(), CounterMsg::Report { target: fut });
                let sum = co.get(&fut).as_i64();
                assert_eq!(sum, 1 + 2 + 3 + 4, "backend {name}");
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// Dense arrays: per-element messages, element proxies, index math
// ---------------------------------------------------------------------------

struct Cell {
    my_lin: i64,
}

#[derive(Serialize, Deserialize)]
enum CellMsg {
    WhoAmI,
}

impl Chare for Cell {
    type Msg = CellMsg;
    type Init = i32; // columns, to compute a linear id
    fn create(cols: i32, ctx: &mut Ctx) -> Self {
        let ix = ctx.my_index();
        Cell {
            my_lin: (ix.coords()[0] * cols + ix.coords()[1]) as i64,
        }
    }
    fn receive(&mut self, msg: CellMsg, ctx: &mut Ctx) {
        let CellMsg::WhoAmI = msg;
        ctx.reply(self.my_lin);
    }
}

#[test]
fn dense_2d_array_elements_addressable() {
    for (name, backend) in both_backends() {
        Runtime::new(4)
            .backend(backend)
            .register::<Cell>()
            .run(move |co| {
                let grid = co.ctx().create_array::<Cell>(&[4, 5], 5);
                // Ask a few specific elements who they are.
                for (r, c) in [(0, 0), (1, 3), (3, 4), (2, 2)] {
                    let f = grid.elem((r, c)).call::<i64>(co.ctx(), CellMsg::WhoAmI);
                    assert_eq!(co.get(&f), (r * 5 + c) as i64, "backend {name}");
                }
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// Empty reduction as a barrier over an array
// ---------------------------------------------------------------------------

struct BarrierChare;

#[derive(Serialize, Deserialize)]
enum BarrierMsg {
    Go { done: Future<RedData> },
}

impl Chare for BarrierChare {
    type Msg = BarrierMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        BarrierChare
    }
    fn receive(&mut self, msg: BarrierMsg, ctx: &mut Ctx) {
        let BarrierMsg::Go { done } = msg;
        ctx.contribute_barrier(RedTarget::Future(done.id()));
    }
}

#[test]
fn empty_reduction_barrier() {
    for (_, backend) in both_backends() {
        Runtime::new(3)
            .backend(backend)
            .register::<BarrierChare>()
            .run(|co| {
                let arr = co.ctx().create_array::<BarrierChare>(&[10], ());
                let done = co.ctx().create_future::<RedData>();
                arr.send(co.ctx(), BarrierMsg::Go { done });
                assert_eq!(co.get(&done), RedData::Unit);
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// Explicit futures sent to other chares (paper §II-H3 listing)
// ---------------------------------------------------------------------------

struct Worker2;

#[derive(Serialize, Deserialize)]
enum W2Msg {
    DoWork { f1: Future<i64>, f2: Future<i64> },
}

impl Chare for Worker2 {
    type Msg = W2Msg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Worker2
    }
    fn receive(&mut self, msg: W2Msg, ctx: &mut Ctx) {
        let W2Msg::DoWork { f1, f2 } = msg;
        ctx.send_future(&f1, 41);
        ctx.send_future(&f2, 42);
    }
}

#[test]
fn explicit_futures_completed_remotely() {
    for (_, backend) in both_backends() {
        Runtime::new(2)
            .backend(backend)
            .register::<Worker2>()
            .run(|co| {
                let remote = co.ctx().create_chare::<Worker2>((), Some(1));
                let f1 = co.ctx().create_future::<i64>();
                let f2 = co.ctx().create_future::<i64>();
                remote.send(co.ctx(), W2Msg::DoWork { f1, f2 });
                // Out-of-order retrieval must work.
                assert_eq!(co.get(&f2), 42);
                assert_eq!(co.get(&f1), 41);
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// Report sanity
// ---------------------------------------------------------------------------

#[test]
fn report_counts_messages_and_entries() {
    static ENTRIES: AtomicUsize = AtomicUsize::new(0);
    let report = Runtime::new(2)
        .backend(Backend::Sim(MachineModel::local(2)))
        .register::<Echo>()
        .run(|co| {
            ENTRIES.store(0, Ordering::SeqCst);
            let p = co.ctx().create_chare::<Echo>(0, Some(1));
            let f = p.call::<String>(co.ctx(), EchoMsg::Greet("x".into()));
            co.get(&f);
            co.ctx().exit();
        });
    assert!(report.clean_exit);
    assert!(report.msgs >= 2, "msgs = {}", report.msgs);
    assert!(report.entries >= 1);
    assert!(report.bytes > 0, "cross-PE traffic should be counted");
}

#[test]
fn dynamic_dispatch_mode_works_end_to_end() {
    let report = Runtime::new(3)
        .backend(Backend::Sim(MachineModel::local(3)))
        .dispatch(DispatchMode::Dynamic)
        .register::<Counter>()
        .run(|co| {
            let group = co.ctx().create_group::<Counter>(());
            let fut = co.ctx().create_future::<RedData>();
            group.send(co.ctx(), CounterMsg::Report { target: fut });
            assert_eq!(co.get(&fut).as_i64(), 3);
            co.ctx().exit();
        });
    assert!(report.clean_exit);
}
