//! Mutation smoke test (`--features mutation-ckptack`, DESIGN.md §11).
//!
//! The feature reintroduces the seed's stray-CkptAck panic (fixed in the
//! static-analysis PR by demoting it to a drop) and restores its
//! reachability: the pre-fix network layer drew no app/control distinction,
//! so the fault injector could duplicate a checkpoint ack. One duplicated
//! ack closes the initiator's checkpoint window one ack early; the final
//! real ack then arrives with no checkpoint in progress and the mutated
//! runtime panics. `charm-check` must rediscover this bug, shrink the
//! counterexample to a handful of scheduling decisions, and produce a
//! replay artifact that reproduces the failure bit-identically.

#![cfg(feature = "mutation-ckptack")]

use charm_core::analyze::InjectFault;
use charm_core::prelude::*;
use charm_core::{CheckCfg, Store};
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

const NPES: usize = 2;

#[derive(Serialize, Deserialize)]
struct Bump {
    total: i64,
}

#[derive(Serialize, Deserialize)]
enum BumpMsg {
    Add(i64),
    Total,
}

impl Chare for Bump {
    type Msg = BumpMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Bump { total: 0 }
    }
    fn receive(&mut self, msg: BumpMsg, ctx: &mut Ctx) {
        match msg {
            BumpMsg::Add(v) => self.total += v,
            BumpMsg::Total => ctx.reply(self.total),
        }
    }
}

/// One bump on PE 1, a quiescence round (whose completion takes the
/// automatic checkpoint — the protocol under attack), then a verified
/// total and exit.
fn program(co: &mut Co<Main>) {
    let c = co.ctx().create_chare::<Bump>((), Some(1));
    c.send(co.ctx(), BumpMsg::Add(7));
    let q = co.ctx().create_future::<()>();
    co.ctx().start_quiescence(&q);
    co.get(&q);
    let f = c.call::<i64>(co.ctx(), BumpMsg::Total);
    assert_eq!(co.get(&f), 7);
    co.ctx().exit();
}

fn mutated_runtime(n: u64) -> Runtime {
    let (rt, _probe) = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .meter_compute(false)
        .register_migratable::<Bump>()
        .auto_checkpoint(1, Store::Memory)
        .analyze_inject(InjectFault::DuplicateNth(n));
    rt
}

/// The exact injector position of the checkpoint ack is an implementation
/// detail, so scan the first few positions until the duplicate lands on
/// one — the mutated panic, not the detector's double-delivery finding,
/// is the failure that proves the reintroduced bug was reached.
#[test]
fn check_rediscovers_and_shrinks_the_stray_ckptack_bug() {
    let dir = std::env::temp_dir().join(format!("charmrs-mutation-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let artifact = dir.join("stray-ckptack.schedule");

    let mut caught = None;
    for n in 0..10 {
        let report = mutated_runtime(n).check(
            CheckCfg {
                max_executions: 40,
                artifact: Some(artifact.clone()),
                ..CheckCfg::default()
            },
            program,
        );
        if let Some(cx) = report.counterexample {
            if cx.failure.contains("stray CkptAck") {
                caught = Some((n, cx));
                break;
            }
        }
    }
    let (n, cx) = caught.expect(
        "no duplicated-ack position reproduced the stray-CkptAck panic in the first 10 slots",
    );

    assert!(
        cx.decisions <= 8,
        "counterexample shrank to {} decisions (> 8) from {}",
        cx.decisions,
        cx.original_len
    );
    assert!(
        cx.decisions <= cx.original_len,
        "shrinking must never grow the schedule"
    );
    let path = cx.artifact.expect("no replay artifact was written");

    // The artifact replays the failure bit-identically: same failure text,
    // same delivery/clock digest, twice over.
    let r1 = mutated_runtime(n)
        .replay_schedule(&path, program)
        .expect("replay artifact unreadable");
    let r2 = mutated_runtime(n)
        .replay_schedule(&path, program)
        .expect("replay artifact unreadable");
    assert!(
        r1.failure
            .as_deref()
            .unwrap_or("")
            .contains("stray CkptAck"),
        "replay did not reproduce the mutated panic: {:?}",
        r1.failure
    );
    assert_eq!(
        (r1.digest, &r1.failure),
        (r2.digest, &r2.failure),
        "two replays of one artifact diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without the injected duplicate the mutated runtime is indistinguishable
/// from the fixed one on this program: every ack finds its window, so a
/// bounded exploration reports no counterexample.
#[test]
fn mutated_runtime_is_clean_without_the_injected_duplicate() {
    let rt = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .meter_compute(false)
        .register_migratable::<Bump>()
        .auto_checkpoint(1, Store::Memory);
    let report = rt.check(
        CheckCfg {
            max_executions: 60,
            ..CheckCfg::default()
        },
        program,
    );
    assert!(
        report.counterexample.is_none(),
        "clean program produced a counterexample: {:?}",
        report.counterexample
    );
}
