//! Checkpoint / restart tests: state survives a full runtime teardown and
//! restore, including onto a different PE count.

use charm_core::prelude::*;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct Counter {
    count: i64,
    history: Vec<i64>,
}

#[derive(Serialize, Deserialize)]
enum CounterMsg {
    Add(i64),
    Sum { done: Future<RedData> },
    WherePe { done: Future<RedData> },
}

impl Chare for Counter {
    type Msg = CounterMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Counter {
            count: 0,
            history: Vec::new(),
        }
    }
    fn receive(&mut self, msg: CounterMsg, ctx: &mut Ctx) {
        match msg {
            CounterMsg::Add(v) => {
                self.count += v;
                self.history.push(v);
            }
            CounterMsg::Sum { done } => ctx.contribute(
                RedData::I64(self.count),
                Reducer::Sum,
                RedTarget::Future(done.id()),
            ),
            CounterMsg::WherePe { done } => ctx.contribute(
                RedData::VecI64(vec![ctx.my_pe() as i64]),
                Reducer::Max,
                RedTarget::Future(done.id()),
            ),
        }
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("charmrs-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn rt(npes: usize) -> Runtime {
    Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::local(npes)))
        .meter_compute(false)
        .register_migratable::<Counter>()
}

fn checkpointed_run(dir: std::path::PathBuf, npes: usize) -> i64 {
    let out = std::sync::Arc::new(std::sync::Mutex::new(0i64));
    let out2 = std::sync::Arc::clone(&out);
    rt(npes).run(move |co| {
        let arr = co.ctx().create_array::<Counter>(&[10], ());
        for i in 0..10 {
            arr.elem(i).send(co.ctx(), CounterMsg::Add(i as i64 + 1));
            arr.elem(i).send(co.ctx(), CounterMsg::Add(100));
        }
        // Quiesce, then checkpoint (the documented protocol).
        let q = co.ctx().create_future::<()>();
        co.ctx().start_quiescence(&q);
        co.get(&q);
        let done = co.ctx().create_future::<i64>();
        co.ctx()
            .checkpoint(dir.to_str().unwrap().to_string(), &done);
        let saved = co.get(&done);
        *out2.lock().unwrap() = saved;
        co.ctx().exit();
    });
    let v = *out.lock().unwrap();
    v
}

#[test]
fn checkpoint_then_restore_same_pe_count() {
    let dir = tmpdir("same");
    let saved = checkpointed_run(dir.clone(), 3);
    assert_eq!(saved, 10, "all array members saved");

    // Fresh runtime, restored from disk; the entry closure re-queries.
    let dir2 = dir.clone();
    rt(3).run_restored(dir, move |co| {
        let _ = &dir2;
        // The proxy to the restored collection: rebuild it from the known
        // creation order (first collection created by PE 0).
        let arr =
            charm_core::Proxy::<Counter>::restored(charm_core::CollectionId { creator: 0, seq: 0 });
        let done = co.ctx().create_future::<RedData>();
        arr.send(co.ctx(), CounterMsg::Sum { done });
        let total = co.get(&done).as_i64();
        // Each member i holds (i+1) + 100 → Σ = 55 + 1000.
        assert_eq!(total, 1055, "state must survive the restore");
        co.ctx().exit();
    });
    let _ = std::fs::remove_dir_all(tmpdir("same"));
}

#[test]
fn restore_onto_more_pes_redistributes() {
    let dir = tmpdir("grow");
    checkpointed_run(dir.clone(), 2);

    rt(5).run_restored(dir.clone(), move |co| {
        let arr =
            charm_core::Proxy::<Counter>::restored(charm_core::CollectionId { creator: 0, seq: 0 });
        // Members must now be spread beyond the original 2 PEs.
        let spread = co.ctx().create_future::<RedData>();
        arr.send(co.ctx(), CounterMsg::WherePe { done: spread });
        let max_pe = co.get(&spread).as_vec_i64()[0];
        assert!(
            max_pe >= 2,
            "restored members should use the new PEs: {max_pe}"
        );
        // And the state is intact.
        let done = co.ctx().create_future::<RedData>();
        arr.send(co.ctx(), CounterMsg::Sum { done });
        assert_eq!(co.get(&done).as_i64(), 1055);
        co.ctx().exit();
    });
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn restored_collection_keeps_working() {
    let dir = tmpdir("resume");
    checkpointed_run(dir.clone(), 2);

    rt(4).run_restored(dir.clone(), move |co| {
        let arr =
            charm_core::Proxy::<Counter>::restored(charm_core::CollectionId { creator: 0, seq: 0 });
        // Keep computing after the restore: sends, reductions, new
        // collections must all work.
        arr.send(co.ctx(), CounterMsg::Add(1)); // broadcast: +1 to all 10
        let done = co.ctx().create_future::<RedData>();
        arr.send(co.ctx(), CounterMsg::Sum { done });
        assert_eq!(co.get(&done).as_i64(), 1065);
        // New collections allocate fresh ids that must not collide.
        let fresh = co.ctx().create_array::<Counter>(&[4], ());
        let done = co.ctx().create_future::<RedData>();
        fresh.send(co.ctx(), CounterMsg::Sum { done });
        assert_eq!(co.get(&done).as_i64(), 0);
        co.ctx().exit();
    });
    let _ = std::fs::remove_dir_all(dir);
}
