//! TRAM-style aggregation tests (`--features analyze`, DESIGN.md §9).
//!
//! The contract under test: turning `Runtime::aggregation` on changes the
//! *physical* envelope stream (fewer, larger frames) but no *logical*
//! observable — final application state, entry counts, message counts,
//! quiescence detection and fault recovery must all be bit-identical to an
//! aggregation-off run, under arbitrary permuted delivery schedules, with
//! the dynamic detector armed throughout.

#![cfg(feature = "analyze")]

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

use charm_core::analyze::InjectFault;
use charm_core::prelude::*;
use charm_core::{CollectionId, RunReport};
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Fan-in workload: every PE floods one chare with fine-grained messages —
// exactly the traffic aggregation exists for.
// ---------------------------------------------------------------------------

struct Fan {
    sum: i64,
    got: usize,
    expect: usize,
    notify: Option<Future<i64>>,
}

#[derive(Serialize, Deserialize)]
enum FanMsg {
    Push(i64),
    WhenDone { expect: usize, notify: Future<i64> },
}

impl Chare for Fan {
    type Msg = FanMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Fan {
            sum: 0,
            got: 0,
            expect: usize::MAX,
            notify: None,
        }
    }
    fn receive(&mut self, msg: FanMsg, ctx: &mut Ctx) {
        match msg {
            FanMsg::Push(v) => {
                self.sum += v;
                self.got += 1;
            }
            FanMsg::WhenDone { expect, notify } => {
                self.expect = expect;
                self.notify = Some(notify);
            }
        }
        if self.got == self.expect {
            if let Some(f) = self.notify.take() {
                ctx.send_future(&f, self.sum);
            }
        }
    }
}

struct Pusher;

#[derive(Serialize, Deserialize)]
enum PusherMsg {
    Go { fan: Proxy<Fan>, per_pe: i64 },
}

impl Chare for Pusher {
    type Msg = PusherMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Pusher
    }
    fn receive(&mut self, msg: PusherMsg, ctx: &mut Ctx) {
        let PusherMsg::Go { fan, per_pe } = msg;
        for k in 0..per_pe {
            fan.send(ctx, FanMsg::Push(ctx.my_pe() as i64 * 1000 + k));
        }
    }
}

const NPES: usize = 4;
const PER_PE: i64 = 24;

fn fan_expected() -> i64 {
    (0..NPES as i64)
        .map(|pe| (0..PER_PE).map(|k| pe * 1000 + k).sum::<i64>())
        .sum()
}

/// One sim fan-in run; returns (sum, entries, msgs, bytes, total batches,
/// total batched msgs). Detector armed; any finding fails the test.
fn fan_run(agg: Option<AggCfg>, seed: Option<u64>) -> (i64, u64, u64, u64, u64, u64) {
    let (mut rt, probe) = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .register::<Fan>()
        .register::<Pusher>()
        .analyze_probe();
    if let Some(cfg) = agg {
        rt = rt.aggregation(cfg);
    }
    if let Some(s) = seed {
        rt = rt.permute_schedule(s);
    }
    let out = Arc::new(AtomicI64::new(0));
    let sink = Arc::clone(&out);
    let report = rt.run(move |co| {
        let fan = co.ctx().create_chare::<Fan>((), Some(0));
        let group = co.ctx().create_group::<Pusher>(());
        let done = co.ctx().create_future::<i64>();
        group.send(
            co.ctx(),
            PusherMsg::Go {
                fan,
                per_pe: PER_PE,
            },
        );
        fan.send(
            co.ctx(),
            FanMsg::WhenDone {
                expect: NPES * PER_PE as usize,
                notify: done,
            },
        );
        sink.store(co.get(&done), Ordering::SeqCst);
        co.ctx().exit();
    });
    assert!(
        report.clean_exit,
        "agg={agg:?} seed={seed:?}: no clean exit"
    );
    let findings = probe.findings();
    assert!(
        findings.is_empty(),
        "agg={agg:?} seed={seed:?}: detector findings: {findings:?}"
    );
    let batches: u64 = report.pe_stats.iter().map(|p| p.batches_sent).sum();
    let batched: u64 = report.pe_stats.iter().map(|p| p.batch_msgs).sum();
    (
        out.load(Ordering::SeqCst),
        report.entries,
        report.msgs,
        report.bytes,
        batches,
        batched,
    )
}

/// Aggregation-on must be bit-identical to aggregation-off on every logical
/// counter — final sum, entry executions, messages handled, bytes moved —
/// under the unpermuted schedule, with the detector armed (any FIFO
/// violation, double delivery or lost envelope fails). Batches must
/// actually form, and each batch must coalesce more than one message on
/// average for this flood. Schedule coverage lives in the exhaustive
/// `charm-check` test below.
#[test]
fn aggregation_is_bit_identical_to_aggregation_off() {
    let baseline = fan_run(None, None);
    assert_eq!(baseline.0, fan_expected(), "agg-off baseline sum wrong");
    assert_eq!(baseline.4, 0, "aggregation off must send zero batches");

    let on = fan_run(Some(AggCfg::count(8)), None);
    assert_eq!(
        (on.0, on.1, on.2, on.3),
        (baseline.0, baseline.1, baseline.2, baseline.3),
        "logical observables diverged with aggregation on"
    );
    assert!(on.4 > 0, "no batches were formed");
    assert!(
        on.5 > on.4,
        "batches averaged <= 1 message ({} msgs / {} batches)",
        on.5,
        on.4
    );
}

/// Schedule coverage, upgraded from sampling to proof: where this suite
/// once replayed the aggregated fan-in under 16 jittered schedules,
/// `Runtime::check` now explores *every* delivery interleaving of a 2-PE
/// instance up to happens-before equivalence (DESIGN.md §11) with
/// aggregation on. The entry asserts the fan-in sum, the per-execution
/// oracle asserts a clean exit and that batches really formed, and the
/// armed detector turns any FIFO/duplicate/lost-envelope slip into a
/// counterexample. `truncated == false` means the space was exhausted.
#[test]
fn aggregated_fan_in_is_clean_under_exhaustive_exploration() {
    use charm_core::CheckCfg;

    const CHECK_NPES: usize = 2;
    const CHECK_PER_PE: i64 = 2;
    let expected: i64 = (0..CHECK_NPES as i64)
        .map(|pe| (0..CHECK_PER_PE).map(|k| pe * 1000 + k).sum::<i64>())
        .sum();

    let rt = Runtime::new(CHECK_NPES)
        .simulated(MachineModel::local(CHECK_NPES))
        .meter_compute(false)
        .register::<Fan>()
        .register::<Pusher>()
        // PE 1's pusher emits exactly two cross-PE pushes from one handler,
        // so a count-2 buffer coalesces them into one batch on every
        // schedule — the oracle below can demand it unconditionally.
        .aggregation(AggCfg::count(2));
    let report = rt.check(
        CheckCfg {
            max_executions: 200_000,
            oracle: Some(Arc::new(|r: &RunReport| {
                let batches: u64 = r.pe_stats.iter().map(|p| p.batches_sent).sum();
                if !r.clean_exit {
                    Some("no clean exit".to_string())
                } else if batches == 0 {
                    Some("no batches were formed".to_string())
                } else {
                    None
                }
            })),
            ..CheckCfg::default()
        },
        move |co| {
            let fan = co.ctx().create_chare::<Fan>((), Some(0));
            let group = co.ctx().create_group::<Pusher>(());
            let done = co.ctx().create_future::<i64>();
            group.send(
                co.ctx(),
                PusherMsg::Go {
                    fan,
                    per_pe: CHECK_PER_PE,
                },
            );
            fan.send(
                co.ctx(),
                FanMsg::WhenDone {
                    expect: CHECK_NPES * CHECK_PER_PE as usize,
                    notify: done,
                },
            );
            assert_eq!(co.get(&done), expected, "fan-in sum is schedule-dependent");
            co.ctx().exit();
        },
    );
    assert!(
        !report.truncated,
        "aggregated fan-in exploration did not exhaust the space in {} executions",
        report.executions
    );
    assert!(
        report.counterexample.is_none(),
        "aggregated fan-in produced a counterexample: {:?}",
        report.counterexample
    );
    println!(
        "aggregated fan-in: {} executions over {} equivalence classes",
        report.executions, report.equivalence_classes
    );
}

/// The threads backend takes the same code path through `push_out` but
/// flushes from the scheduler's idle transition (the burst-drain loop in
/// `run_threads`): the flood must still fan in completely and batches must
/// form.
#[test]
fn threads_backend_aggregates_and_completes() {
    let (rt, probe) = Runtime::new(NPES)
        .register::<Fan>()
        .register::<Pusher>()
        .analyze_probe();
    let rt = rt.aggregation(AggCfg::count(8));
    let out = Arc::new(AtomicI64::new(0));
    let sink = Arc::clone(&out);
    let report = rt.run(move |co| {
        let fan = co.ctx().create_chare::<Fan>((), Some(0));
        let group = co.ctx().create_group::<Pusher>(());
        let done = co.ctx().create_future::<i64>();
        group.send(
            co.ctx(),
            PusherMsg::Go {
                fan,
                per_pe: PER_PE,
            },
        );
        fan.send(
            co.ctx(),
            FanMsg::WhenDone {
                expect: NPES * PER_PE as usize,
                notify: done,
            },
        );
        sink.store(co.get(&done), Ordering::SeqCst);
        co.ctx().exit();
    });
    assert!(report.clean_exit);
    assert_eq!(out.load(Ordering::SeqCst), fan_expected());
    let findings = probe.findings();
    assert!(findings.is_empty(), "detector findings: {findings:?}");
    let batches: u64 = report.pe_stats.iter().map(|p| p.batches_sent).sum();
    assert!(batches > 0, "threads backend formed no batches");
}

// ---------------------------------------------------------------------------
// Quiescence with parked messages.
// ---------------------------------------------------------------------------

struct Counter {
    total: i64,
}

#[derive(Serialize, Deserialize)]
enum CounterMsg {
    Bump(i64),
    Total,
}

impl Chare for Counter {
    type Msg = CounterMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Counter { total: 0 }
    }
    fn receive(&mut self, msg: CounterMsg, ctx: &mut Ctx) {
        match msg {
            CounterMsg::Bump(v) => self.total += v,
            CounterMsg::Total => ctx.reply(self.total),
        }
    }
}

/// Thresholds so large that nothing ever flushes on its own: every bump
/// parks in PE 0's aggregation buffer, counted as *sent* but undeliverable.
/// Quiescence detection must still terminate — the probe flushes the
/// buffers (`PeState::qd_probe`) — and the flushed bumps must all have
/// landed by the time the QD future completes.
#[test]
fn quiescence_flushes_parked_messages() {
    let (rt, probe) = Runtime::new(2)
        .simulated(MachineModel::local(2))
        .register::<Counter>()
        .analyze_probe();
    let rt = rt.aggregation(AggCfg {
        max_count: 1 << 20,
        max_bytes: 1 << 30,
    });
    let out = Arc::new(AtomicI64::new(-1));
    let sink = Arc::clone(&out);
    let report = rt.run(move |co| {
        let c = co.ctx().create_chare::<Counter>((), Some(1));
        for i in 1..=5 {
            c.send(co.ctx(), CounterMsg::Bump(i));
        }
        let q = co.ctx().create_future::<()>();
        co.ctx().start_quiescence(&q);
        co.get(&q); // hangs forever if QD cannot see the parked bumps
        let f = c.call::<i64>(co.ctx(), CounterMsg::Total);
        sink.store(co.get(&f), Ordering::SeqCst);
        co.ctx().exit();
    });
    assert!(report.clean_exit);
    assert_eq!(out.load(Ordering::SeqCst), 15, "a parked bump was lost");
    let findings = probe.findings();
    assert!(findings.is_empty(), "detector findings: {findings:?}");
    let batches: u64 = report.pe_stats.iter().map(|p| p.batches_sent).sum();
    assert!(batches >= 1, "the parked bumps never left via a batch");
}

// ---------------------------------------------------------------------------
// Fault recovery with aggregation on (the ring stencil from the ft suite).
// ---------------------------------------------------------------------------

const RING_N: i32 = 8;
const ROUNDS: i64 = 6;

#[derive(Serialize, Deserialize)]
struct Ring {
    cur: i64,
    rounds_done: i64,
    hist: Vec<i64>,
    sent: bool,
    recv: Option<i64>,
}

#[derive(Serialize, Deserialize)]
enum RingMsg {
    DoRound,
    Shift(i64),
    RoundsDone,
    Hist,
}

impl Chare for Ring {
    type Msg = RingMsg;
    type Init = ();
    fn create(_: (), ctx: &mut Ctx) -> Self {
        Ring {
            cur: ctx.my_index().first() as i64 + 1,
            rounds_done: 0,
            hist: Vec::new(),
            sent: false,
            recv: None,
        }
    }
    fn receive(&mut self, msg: RingMsg, ctx: &mut Ctx) {
        match msg {
            RingMsg::DoRound => {
                let right = ((ctx.my_index().first() + 1) % RING_N) as usize;
                let arr = ctx.this_proxy::<Ring>();
                arr.elem(right).send(ctx, RingMsg::Shift(self.cur));
                self.sent = true;
            }
            RingMsg::Shift(v) => self.recv = Some(v),
            RingMsg::RoundsDone => ctx.reply(self.rounds_done),
            RingMsg::Hist => {
                let h = self.hist.clone();
                ctx.reply(h);
            }
        }
        if self.sent {
            if let Some(v) = self.recv.take() {
                self.sent = false;
                self.cur = self.cur * 3 + v;
                self.rounds_done += 1;
                self.hist.push(self.cur);
            }
        }
    }
}

fn expected_hists(rounds: i64) -> Vec<Vec<i64>> {
    let n = RING_N as usize;
    let mut cur: Vec<i64> = (0..n).map(|i| i as i64 + 1).collect();
    let mut hists = vec![Vec::new(); n];
    for _ in 0..rounds {
        let prev = cur.clone();
        for (i, h) in hists.iter_mut().enumerate() {
            cur[i] = prev[i] * 3 + prev[(i + n - 1) % n];
            h.push(cur[i]);
        }
    }
    hists
}

fn drive(co: &mut Co<Main>, arr: &Proxy<Ring>, from: i64, out: &Arc<Mutex<Vec<Vec<i64>>>>) {
    for _ in from..ROUNDS {
        arr.send(co.ctx(), RingMsg::DoRound);
        let q = co.ctx().create_future::<()>();
        co.ctx().start_quiescence(&q);
        co.get(&q);
    }
    let mut hists = Vec::new();
    for i in 0..RING_N as usize {
        let f = arr.elem(i).call::<Vec<i64>>(co.ctx(), RingMsg::Hist);
        hists.push(co.get(&f));
    }
    *out.lock().unwrap() = hists;
    co.ctx().exit();
}

fn stencil_run(kill: bool, seed: Option<u64>) -> (Vec<Vec<i64>>, RunReport, u64, Vec<String>) {
    let rt = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .meter_compute(false)
        .register_migratable::<Ring>()
        .auto_checkpoint(1, Store::Memory)
        .aggregation(AggCfg::default());
    let (mut rt, probe) = if kill {
        rt.analyze_inject(InjectFault::KillPe {
            pe: 1,
            after_nth: 10,
        })
    } else {
        rt.analyze_probe()
    };
    if let Some(s) = seed {
        rt = rt.permute_schedule(s);
    }
    let out = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let rt = rt.recover_with(move |co| {
        let arr = Proxy::<Ring>::restored(CollectionId { creator: 0, seq: 0 });
        let f = arr.elem(0usize).call::<i64>(co.ctx(), RingMsg::RoundsDone);
        let from = co.get(&f);
        drive(co, &arr, from, &sink);
    });
    let sink = Arc::clone(&out);
    let report = rt.run(move |co| {
        let arr = co.ctx().create_array::<Ring>(&[RING_N], ());
        drive(co, &arr, 0, &sink);
    });
    let stale: u64 = report.pe_stats.iter().map(|p| p.stale_discarded).sum();
    let hists = out.lock().unwrap().clone();
    (hists, report, stale, probe.findings())
}

/// Killing a PE mid-stencil with aggregation on: the pre-failure
/// checkpoint was flushed before packing (`PeState::ckpt_save`), in-flight
/// and parked pre-kill traffic is stranded in the dead epoch (stale
/// batches discard *all* their constituents), and the recovered run must
/// match the fault-free result bit for bit under permuted schedules.
#[test]
fn killed_pe_recovers_bit_identical_with_aggregation() {
    let expected = expected_hists(ROUNDS);
    let (hists, report, stale, findings) = stencil_run(false, None);
    assert!(findings.is_empty(), "fault-free findings: {findings:?}");
    assert_eq!(report.recoveries, 0);
    assert_eq!(stale, 0, "no recovery, so nothing to discard");
    assert_eq!(hists, expected, "fault-free aggregated baseline diverged");

    for seed in [None, Some(3), Some(7), Some(11), Some(16)] {
        let (hists, report, stale, findings) = stencil_run(true, seed);
        assert!(
            findings.is_empty(),
            "seed {seed:?}: detector findings after recovery: {findings:?}"
        );
        assert_eq!(report.recoveries, 1, "seed {seed:?}: expected one restart");
        assert!(report.clean_exit, "seed {seed:?}: no clean exit");
        assert!(
            stale > 0,
            "seed {seed:?}: the kill must strand pre-recovery traffic"
        );
        assert_eq!(
            hists, expected,
            "seed {seed:?}: recovered aggregated run diverged"
        );
    }
}
