//! Zero-copy fan-out: a broadcast or section multicast to N members must
//! serialize its payload exactly once, however many members (and PEs) the
//! fan-out reaches. The encode count is observed from inside `Serialize`,
//! so any regression to per-member (or per-hop) encoding fails here.

use std::sync::atomic::{AtomicUsize, Ordering};

use charm_core::prelude::*;
use charm_sim::MachineModel;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

fn both_backends() -> Vec<Backend> {
    vec![Backend::Threads, Backend::Sim(MachineModel::local(2))]
}

/// An i64 that counts how many times it is serialized (one global counter
/// per test, so the tests stay independent under parallel execution).
macro_rules! counted {
    ($name:ident, $counter:ident) => {
        static $counter: AtomicUsize = AtomicUsize::new(0);

        #[derive(Clone, Copy)]
        struct $name(i64);

        impl Serialize for $name {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                $counter.fetch_add(1, Ordering::SeqCst);
                s.serialize_i64(self.0)
            }
        }

        impl<'de> Deserialize<'de> for $name {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                i64::deserialize(d).map($name)
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------------

counted!(BcastPayload, BCAST_ENCODES);

struct Echo {
    sum: i64,
}

#[derive(Serialize, Deserialize)]
enum EchoMsg {
    Ping {
        x: BcastPayload,
        done: Future<RedData>,
    },
}

impl Chare for Echo {
    type Msg = EchoMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Echo { sum: 0 }
    }
    fn receive(&mut self, msg: EchoMsg, ctx: &mut Ctx) {
        let EchoMsg::Ping { x, done } = msg;
        self.sum += x.0;
        ctx.contribute(
            RedData::I64(self.sum),
            Reducer::Sum,
            RedTarget::Future(done.id()),
        );
    }
}

#[test]
fn broadcast_encodes_exactly_once() {
    for backend in both_backends() {
        let before = BCAST_ENCODES.load(Ordering::SeqCst);
        Runtime::new(2)
            .backend(backend)
            .register::<Echo>()
            .run(|co| {
                let arr = co.ctx().create_array::<Echo>(&[16], ());
                let done = co.ctx().create_future::<RedData>();
                arr.send(
                    co.ctx(),
                    EchoMsg::Ping {
                        x: BcastPayload(3),
                        done,
                    },
                );
                assert_eq!(co.get(&done).as_i64(), 3 * 16, "every member got the ping");
                co.ctx().exit();
            });
        let delta = BCAST_ENCODES.load(Ordering::SeqCst) - before;
        assert_eq!(
            delta, 1,
            "broadcast to 16 members over 2 PEs must encode once, encoded {delta} times"
        );
    }
}

// ---------------------------------------------------------------------------
// Section multicast
// ---------------------------------------------------------------------------

counted!(McastPayload, MCAST_ENCODES);

struct SecMember {
    got: i64,
}

#[derive(Serialize, Deserialize)]
enum SecMsg {
    Ping(McastPayload),
    Count { done: Future<RedData> },
}

impl Chare for SecMember {
    type Msg = SecMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        SecMember { got: 0 }
    }
    fn receive(&mut self, msg: SecMsg, ctx: &mut Ctx) {
        match msg {
            SecMsg::Ping(x) => self.got += x.0,
            SecMsg::Count { done } => ctx.contribute(
                RedData::I64(self.got),
                Reducer::Sum,
                RedTarget::Future(done.id()),
            ),
        }
    }
}

#[test]
fn section_multicast_encodes_exactly_once() {
    for backend in both_backends() {
        let before = MCAST_ENCODES.load(Ordering::SeqCst);
        Runtime::new(2)
            .backend(backend)
            .register::<SecMember>()
            .run(|co| {
                let arr = co.ctx().create_array::<SecMember>(&[12], ());
                let section = arr.section([0i32, 3, 5, 8, 11]);
                section.send(co.ctx(), SecMsg::Ping(McastPayload(7)));
                // Drain the multicast before counting.
                let quiet = co.ctx().create_future::<()>();
                co.ctx().start_quiescence(&quiet);
                co.get(&quiet);
                let done = co.ctx().create_future::<RedData>();
                arr.send(co.ctx(), SecMsg::Count { done });
                assert_eq!(co.get(&done).as_i64(), 7 * 5, "exactly the section was hit");
                co.ctx().exit();
            });
        let delta = MCAST_ENCODES.load(Ordering::SeqCst) - before;
        assert_eq!(
            delta, 1,
            "multicast to 5 members over 2 PEs must encode once, encoded {delta} times"
        );
    }
}
