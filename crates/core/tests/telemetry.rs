//! Cluster-scale telemetry integration tests (DESIGN.md §12).
//!
//! Covers the three tentpole pieces end to end on real runs: summary-mode
//! tracing stays O(bin budget) no matter how many events fire and its bins
//! sum exactly to the per-PE counters; the `charm-perf` analyzer re-derives
//! those totals from the text artifact byte-for-byte; and in-band telemetry
//! sweeps reduce per-PE metric frames to PE 0 at a quiescence cadence —
//! with the armed detector and permuted schedules proving the frames'
//! logical content is a function of the program, not the delivery order.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use charm_core::prelude::*;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Workload: a Pusher group floods a Fan chare on PE 0; every push charges
// deterministic virtual compute, so the hot-chare sketch and busy totals
// are exact functions of the message counts (meter stays off).
// ---------------------------------------------------------------------------

struct Fan {
    sum: i64,
    got: usize,
    expect: usize,
    notify: Option<Future<i64>>,
}

#[derive(Serialize, Deserialize)]
enum FanMsg {
    Push(i64),
    WhenDone { expect: usize, notify: Future<i64> },
}

impl Chare for Fan {
    type Msg = FanMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Fan {
            sum: 0,
            got: 0,
            expect: usize::MAX,
            notify: None,
        }
    }
    fn receive(&mut self, msg: FanMsg, ctx: &mut Ctx) {
        match msg {
            FanMsg::Push(v) => {
                // 3µs of virtual compute per push: the fan dominates the
                // hot-chare sketch deterministically.
                ctx.charge(Duration::from_micros(3));
                self.sum += v;
                self.got += 1;
            }
            FanMsg::WhenDone { expect, notify } => {
                self.expect = expect;
                self.notify = Some(notify);
            }
        }
        if self.got == self.expect {
            if let Some(f) = self.notify.take() {
                ctx.send_future(&f, self.sum);
            }
        }
    }
}

struct Pusher;

#[derive(Serialize, Deserialize)]
enum PusherMsg {
    Go { fan: Proxy<Fan>, per_pe: i64 },
}

impl Chare for Pusher {
    type Msg = PusherMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Pusher
    }
    fn receive(&mut self, msg: PusherMsg, ctx: &mut Ctx) {
        let PusherMsg::Go { fan, per_pe } = msg;
        // 1µs per send on the pushing side.
        ctx.charge(Duration::from_micros(per_pe as u64));
        for k in 0..per_pe {
            fan.send(ctx, FanMsg::Push(ctx.my_pe() as i64 * 1000 + k));
        }
    }
}

const NPES: usize = 4;

fn expected_sum(per_pe: i64) -> i64 {
    (0..NPES as i64)
        .map(|pe| (0..per_pe).map(|k| pe * 1000 + k).sum::<i64>())
        .sum()
}

fn flood_then_quiesce(
    per_pe: i64,
    rounds: usize,
    sink: Arc<AtomicI64>,
) -> impl FnOnce(&mut Co<Main>) + Send + 'static {
    move |co| {
        let fan = co.ctx().create_chare::<Fan>((), Some(0));
        let group = co.ctx().create_group::<Pusher>(());
        let done = co.ctx().create_future::<i64>();
        group.send(co.ctx(), PusherMsg::Go { fan, per_pe });
        fan.send(
            co.ctx(),
            FanMsg::WhenDone {
                expect: NPES * per_pe as usize,
                notify: done,
            },
        );
        sink.store(co.get(&done), Ordering::SeqCst);
        for _ in 0..rounds {
            let q = co.ctx().create_future::<()>();
            co.ctx().start_quiescence(&q);
            co.get(&q);
        }
        co.ctx().exit();
    }
}

// ---------------------------------------------------------------------------
// Summary mode
// ---------------------------------------------------------------------------

/// 100× more charged events than the bin budget must end with at most
/// `max_bins` bins (pairwise merges, not growth) whose per-class sums equal
/// the PE's counters exactly — the O(bin budget) memory claim.
#[test]
fn summary_memory_stays_bounded_under_event_flood() {
    const MAX_BINS: usize = 8;
    const PER_PE: i64 = 200; // 800 pushes ⇒ 800 charged events ≥ 100 × 8
    let out = Arc::new(AtomicI64::new(0));
    let r = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .trace(TraceConfig::summary().quantum_ns(1_000).max_bins(MAX_BINS))
        .register::<Fan>()
        .register::<Pusher>()
        .run(flood_then_quiesce(PER_PE, 0, Arc::clone(&out)));
    assert!(r.clean_exit);
    assert_eq!(out.load(Ordering::SeqCst), expected_sum(PER_PE));
    let trace = r.trace.expect("summary level carries a trace");
    let mut merges = 0;
    for (t, p) in trace.pes.iter().zip(&r.pe_stats) {
        let s = t.summary.as_ref().expect("summary record per PE");
        assert!(
            s.bins.len() <= MAX_BINS,
            "PE {}: {} bins exceed the budget of {MAX_BINS}",
            p.pe,
            s.bins.len()
        );
        merges += s.merges;
        let busy: u64 = s.bins.iter().map(|b| b.busy_ns).sum();
        let idle: u64 = s.bins.iter().map(|b| b.idle_ns).sum();
        let overhead: u64 = s.bins.iter().map(|b| b.overhead_ns).sum();
        assert_eq!(
            (busy, idle, overhead),
            (p.busy_ns, p.idle_ns, p.overhead_ns),
            "PE {}: bins must sum exactly to the counters",
            p.pe
        );
        assert_eq!(
            p.busy_ns + p.idle_ns + p.overhead_ns,
            p.wall_ns,
            "PE {}: quanta must account for the whole wall clock",
            p.pe
        );
    }
    assert!(merges > 0, "the flood must overflow an 8-bin budget");
    assert!(
        r.pe_stats.iter().all(|p| p.busy_ns > 0),
        "every PE charged compute"
    );
}

/// The threads backend's summary quanta must also sum exactly to the
/// per-PE counters and wall clock: pre-idle aggregation flushes charge to
/// overhead, not idle, so nothing falls between the bins.
#[test]
fn summary_quanta_sum_to_wall_on_threads_backend() {
    let out = Arc::new(AtomicI64::new(0));
    let r = Runtime::new(2)
        .aggregation(AggCfg::count(4))
        .trace(TraceConfig::summary())
        .register::<Fan>()
        .register::<Pusher>()
        .run({
            let out = Arc::clone(&out);
            move |co| {
                let fan = co.ctx().create_chare::<Fan>((), Some(1));
                let done = co.ctx().create_future::<i64>();
                for k in 0..24 {
                    fan.send(co.ctx(), FanMsg::Push(k));
                }
                fan.send(
                    co.ctx(),
                    FanMsg::WhenDone {
                        expect: 24,
                        notify: done,
                    },
                );
                out.store(co.get(&done), Ordering::SeqCst);
                co.ctx().exit();
            }
        });
    assert!(r.clean_exit);
    assert_eq!(out.load(Ordering::SeqCst), (0..24).sum::<i64>());
    let trace = r.trace.expect("summary level carries a trace");
    for (t, p) in trace.pes.iter().zip(&r.pe_stats) {
        let s = t.summary.as_ref().expect("summary record per PE");
        let busy: u64 = s.bins.iter().map(|b| b.busy_ns).sum();
        let idle: u64 = s.bins.iter().map(|b| b.idle_ns).sum();
        let overhead: u64 = s.bins.iter().map(|b| b.overhead_ns).sum();
        assert_eq!(
            (busy, idle, overhead),
            (p.busy_ns, p.idle_ns, p.overhead_ns),
            "PE {}: threads bins must sum exactly to the counters",
            p.pe
        );
        assert_eq!(p.busy_ns + p.idle_ns + p.overhead_ns, p.wall_ns);
    }
}

/// Acceptance: `charm-perf` ingests the summary artifact and re-derives
/// per-PE busy/idle/overhead totals that match `RunReport::pe_stats`
/// exactly.
#[test]
fn charm_perf_reproduces_pe_stats_from_the_artifact() {
    let out = Arc::new(AtomicI64::new(0));
    let r = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .trace(TraceConfig::summary())
        .register::<Fan>()
        .register::<Pusher>()
        .run(flood_then_quiesce(24, 0, Arc::clone(&out)));
    assert!(r.clean_exit);
    let trace = r.trace.expect("summary level carries a trace");
    let parsed = charm_perf::parse_summary(&trace.summary_artifact()).expect("artifact parses");
    assert_eq!(parsed.len(), NPES);
    for (pp, p) in parsed.iter().zip(&r.pe_stats) {
        assert_eq!(pp.pe, p.pe);
        assert_eq!(
            (pp.busy_ns, pp.idle_ns, pp.overhead_ns, pp.wall_ns),
            (p.busy_ns, p.idle_ns, p.overhead_ns, p.wall_ns),
            "PE {}: artifact header diverged from RunReport::pe_stats",
            p.pe
        );
        assert_eq!(
            pp.bin_totals(),
            (p.busy_ns, p.idle_ns, p.overhead_ns),
            "PE {}: analyzer bin totals diverged from RunReport::pe_stats",
            p.pe
        );
    }
    let report = charm_perf::summary_report(&parsed);
    assert!(
        report.contains("exact") && !report.contains("MISMATCH"),
        "{report}"
    );
}

// ---------------------------------------------------------------------------
// In-band telemetry
// ---------------------------------------------------------------------------

/// Sweeps at every quiescence round land merged frames in
/// `RunReport::telemetry` (sequential seqs, all PEs merged) and stream the
/// same frames through the configured sink; quantile histograms carry the
/// entry and latency samples.
#[test]
fn telemetry_frames_reach_report_and_sink() {
    let out = Arc::new(AtomicI64::new(0));
    let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let r = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .telemetry(
            TelemetryCfg::every(1).sink(move |f| sink.lock().unwrap().push(f.logical_digest())),
        )
        .register::<Fan>()
        .register::<Pusher>()
        .run(flood_then_quiesce(8, 2, Arc::clone(&out)));
    assert!(r.clean_exit);
    assert_eq!(out.load(Ordering::SeqCst), expected_sum(8));
    assert!(
        r.telemetry.len() >= 2,
        "two quiescence rounds at every=1 must yield two frames, got {}",
        r.telemetry.len()
    );
    for (i, f) in r.telemetry.iter().enumerate() {
        assert_eq!(f.seq, i as u64, "sweep seqs are sequential");
        assert_eq!(f.pes, NPES as u64, "every PE merged into the frame");
        assert!(f.busy_ns > 0, "charged compute shows up as busy time");
        assert!(f.entries > 0);
        assert!(
            f.exec.count() > 0,
            "entry executions feed the exec histogram"
        );
        assert!(
            f.latency.count() > 0,
            "remote sends feed the latency histogram"
        );
        assert!((0.0..=1.0).contains(&f.util_min));
        assert!(f.util_min <= f.util_max && f.util_max <= 1.0);
        assert!(!f.top.is_empty(), "hot-chare sketch surfaces the fan");
    }
    // Counters are cumulative: later frames never report less.
    for w in r.telemetry.windows(2) {
        assert!(w[1].msgs_processed >= w[0].msgs_processed);
        assert!(w[1].entries >= w[0].entries);
    }
    let fan_is_hot = r
        .telemetry
        .last()
        .unwrap()
        .top
        .iter()
        .any(|t| t.label.starts_with("Fan"));
    assert!(
        fan_is_hot,
        "Fan dominates charged work: {:?}",
        r.telemetry.last().unwrap().top
    );
    let streamed = seen.lock().unwrap().clone();
    let retained: Vec<u64> = r.telemetry.iter().map(|f| f.logical_digest()).collect();
    assert_eq!(streamed, retained, "sink saw exactly the retained series");
}

/// Telemetry artifact → `charm-perf` round trip on a real run.
#[test]
fn charm_perf_parses_the_telemetry_artifact() {
    let out = Arc::new(AtomicI64::new(0));
    let r = Runtime::new(NPES)
        .simulated(MachineModel::local(NPES))
        .telemetry(TelemetryCfg::every(1))
        .register::<Fan>()
        .register::<Pusher>()
        .run(flood_then_quiesce(8, 1, Arc::clone(&out)));
    assert!(r.clean_exit && !r.telemetry.is_empty());
    let text = charm_trace::frames_artifact(&r.telemetry);
    let frames = charm_perf::parse_telemetry(&text).expect("artifact parses");
    assert_eq!(frames.len(), r.telemetry.len());
    for (parsed, orig) in frames.iter().zip(&r.telemetry) {
        assert_eq!(parsed.seq, orig.seq);
        assert_eq!(parsed.busy_ns, orig.busy_ns);
        assert_eq!(parsed.exec.count(), orig.exec.count());
        assert_eq!(parsed.top.len(), orig.top.len());
    }
    let report = charm_perf::telemetry_report(&frames, 4);
    assert!(report.contains("Fan"), "{report}");
}

/// Telemetry must compose with auto-checkpointing: when both fall due at
/// the same quiescence round the sweep runs after the checkpoint commits,
/// and both still complete the held waiters.
#[test]
fn telemetry_composes_with_auto_checkpoint() {
    let out = Arc::new(AtomicI64::new(0));
    let r = Runtime::new(2)
        .simulated(MachineModel::local(2))
        .auto_checkpoint(1, Store::Memory)
        .telemetry(TelemetryCfg::every(1))
        .register::<Fan>()
        .register::<Pusher>()
        .run(flood_then_quiesce(4, 2, Arc::clone(&out)));
    assert!(r.clean_exit);
    assert!(
        r.telemetry.len() >= 2,
        "sweeps must still fire on checkpointing rounds, got {}",
        r.telemetry.len()
    );
    for f in &r.telemetry {
        assert_eq!(f.pes, 2);
    }
}

// ---------------------------------------------------------------------------
// Determinism (detector armed; analyze feature)
// ---------------------------------------------------------------------------

/// The telemetry series' logical digests must be bit-identical across the
/// natural schedule and 16 permuted ones, with aggregation off AND on —
/// the frames describe the program, not the delivery order. Detector armed
/// throughout: any FIFO/duplicate/lost-envelope slip fails the run.
#[cfg(feature = "analyze")]
#[test]
fn telemetry_digests_are_schedule_and_aggregation_independent() {
    fn digests(agg: Option<AggCfg>, seed: Option<u64>) -> Vec<u64> {
        let (mut rt, probe) = Runtime::new(NPES)
            .simulated(MachineModel::local(NPES))
            .meter_compute(false)
            .telemetry(TelemetryCfg::every(1))
            .register::<Fan>()
            .register::<Pusher>()
            .analyze_probe();
        if let Some(cfg) = agg {
            rt = rt.aggregation(cfg);
        }
        if let Some(s) = seed {
            rt = rt.permute_schedule(s);
        }
        let out = Arc::new(AtomicI64::new(0));
        let r = rt.run(flood_then_quiesce(6, 2, Arc::clone(&out)));
        assert!(r.clean_exit, "agg={agg:?} seed={seed:?}: no clean exit");
        assert_eq!(out.load(Ordering::SeqCst), expected_sum(6));
        let findings = probe.findings();
        assert!(
            findings.is_empty(),
            "agg={agg:?} seed={seed:?}: detector findings: {findings:?}"
        );
        assert!(!r.telemetry.is_empty());
        r.telemetry.iter().map(|f| f.logical_digest()).collect()
    }

    let baseline = digests(None, None);
    for seed in 1..=16u64 {
        assert_eq!(
            digests(None, Some(seed)),
            baseline,
            "seed {seed}: permuted schedule changed the telemetry digests"
        );
        assert_eq!(
            digests(Some(AggCfg::count(8)), Some(seed)),
            baseline,
            "seed {seed}: aggregation + permutation changed the telemetry digests"
        );
    }
    assert_eq!(
        digests(Some(AggCfg::count(8)), None),
        baseline,
        "aggregation alone changed the telemetry digests"
    );
}

/// Exhaustive 2-PE exploration with telemetry armed: every delivery
/// interleaving (up to happens-before equivalence) must complete cleanly,
/// produce the same telemetry digests, and exhaust the space
/// (`!truncated`) — the sweep protocol introduces no new races.
#[cfg(feature = "analyze")]
#[test]
fn telemetry_is_clean_under_exhaustive_exploration() {
    use charm_core::CheckCfg;

    let expected: i64 = (0..2i64)
        .map(|pe| (0..2i64).map(|k| pe * 1000 + k).sum::<i64>())
        .sum();
    let reference: Arc<Mutex<Option<Vec<u64>>>> = Arc::new(Mutex::new(None));
    let oracle_ref = Arc::clone(&reference);

    let rt = Runtime::new(2)
        .simulated(MachineModel::local(2))
        .meter_compute(false)
        .telemetry(TelemetryCfg::every(1))
        .register::<Fan>()
        .register::<Pusher>();
    let report = rt.check(
        CheckCfg {
            max_executions: 200_000,
            oracle: Some(Arc::new(move |r: &RunReport| {
                if !r.clean_exit {
                    return Some("no clean exit".to_string());
                }
                if r.telemetry.is_empty() {
                    return Some("no telemetry frames".to_string());
                }
                let digests: Vec<u64> = r.telemetry.iter().map(|f| f.logical_digest()).collect();
                let mut slot = oracle_ref.lock().unwrap();
                match slot.as_ref() {
                    None => {
                        *slot = Some(digests);
                        None
                    }
                    Some(first) if *first == digests => None,
                    Some(first) => Some(format!(
                        "telemetry digests diverged across interleavings: {first:?} vs {digests:?}"
                    )),
                }
            })),
            ..CheckCfg::default()
        },
        move |co| {
            let fan = co.ctx().create_chare::<Fan>((), Some(0));
            let group = co.ctx().create_group::<Pusher>(());
            let done = co.ctx().create_future::<i64>();
            group.send(co.ctx(), PusherMsg::Go { fan, per_pe: 2 });
            fan.send(
                co.ctx(),
                FanMsg::WhenDone {
                    expect: 4,
                    notify: done,
                },
            );
            assert_eq!(co.get(&done), expected);
            let q = co.ctx().create_future::<()>();
            co.ctx().start_quiescence(&q);
            co.get(&q);
            co.ctx().exit();
        },
    );
    assert!(
        !report.truncated,
        "telemetry exploration did not exhaust the space in {} executions",
        report.executions
    );
    assert!(
        report.counterexample.is_none(),
        "telemetry produced a counterexample: {:?}",
        report.counterexample
    );
    println!(
        "telemetry check: {} executions over {} equivalence classes",
        report.executions, report.equivalence_classes
    );
}
