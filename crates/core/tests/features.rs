//! Feature tests: when-guards, threaded entry methods (wait construct),
//! migration, sparse arrays, custom reducers/placements, gather,
//! reduction-to-chare targets, quiescence detection and load balancing.

use std::sync::Arc;

use charm_core::prelude::*;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

fn both_backends() -> Vec<(&'static str, Backend)> {
    vec![
        ("threads", Backend::Threads),
        ("sim", Backend::Sim(MachineModel::local(4))),
    ]
}

// ---------------------------------------------------------------------------
// when-guard: deliver strictly in iteration order, regardless of send order
// ---------------------------------------------------------------------------

struct Ordered {
    iter: u32,
    log: Vec<u32>,
}

#[derive(Serialize, Deserialize)]
enum OrderedMsg {
    Step { iter: u32, done: Future<i64> },
}

impl Chare for Ordered {
    type Msg = OrderedMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Ordered {
            iter: 0,
            log: Vec::new(),
        }
    }
    // The paper's canonical @when("self.iter == iter") condition.
    fn guard(&self, msg: &OrderedMsg) -> bool {
        let OrderedMsg::Step { iter, .. } = msg;
        *iter == self.iter
    }
    fn receive(&mut self, msg: OrderedMsg, ctx: &mut Ctx) {
        let OrderedMsg::Step { iter, done } = msg;
        assert_eq!(iter, self.iter, "guard must enforce order");
        self.log.push(iter);
        self.iter += 1;
        if self.iter == 10 {
            ctx.send_future(&done, self.log.iter().map(|&x| x as i64).sum());
        }
    }
}

#[test]
fn when_guard_reorders_messages() {
    for (name, backend) in both_backends() {
        Runtime::new(2)
            .backend(backend)
            .register::<Ordered>()
            .run(move |co| {
                let ch = co.ctx().create_chare::<Ordered>((), Some(1));
                let done = co.ctx().create_future::<i64>();
                // Send iterations deliberately out of order.
                for iter in [3u32, 1, 4, 0, 9, 2, 6, 5, 8, 7] {
                    ch.send(co.ctx(), OrderedMsg::Step { iter, done });
                }
                assert_eq!(co.get(&done), 45, "backend {name}");
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// Threaded entry method + wait: the paper's §II-H2 iterative pattern
// ---------------------------------------------------------------------------

struct Waiter {
    msg_count: usize,
    received: Vec<i64>,
}

#[derive(Serialize, Deserialize)]
enum WaiterMsg {
    Start { expect: usize, done: Future<i64> },
    RecvData(i64),
}

impl Chare for Waiter {
    type Msg = WaiterMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Waiter {
            msg_count: 0,
            received: Vec::new(),
        }
    }
    fn receive(&mut self, msg: WaiterMsg, ctx: &mut Ctx) {
        match msg {
            WaiterMsg::Start { expect, done } => {
                // @threaded work(): wait until all neighbor data arrived,
                // then compute. Ordinary RecvData entries keep landing on
                // this chare while the coroutine is suspended.
                ctx.go::<Waiter>(move |co| {
                    co.wait(move |c: &Waiter| c.msg_count == expect);
                    let sum: i64 = co.this().received.iter().sum();
                    co.ctx().send_future(&done, sum);
                });
            }
            WaiterMsg::RecvData(v) => {
                self.msg_count += 1;
                self.received.push(v);
            }
        }
    }
}

#[test]
fn threaded_wait_construct() {
    for (name, backend) in both_backends() {
        Runtime::new(3)
            .backend(backend)
            .register::<Waiter>()
            .run(move |co| {
                let w = co.ctx().create_chare::<Waiter>((), Some(2));
                let done = co.ctx().create_future::<i64>();
                w.send(co.ctx(), WaiterMsg::Start { expect: 5, done });
                for v in 1..=5i64 {
                    w.send(co.ctx(), WaiterMsg::RecvData(v * 10));
                }
                assert_eq!(co.get(&done), 150, "backend {name}");
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// Manual migration: state survives, messages keep arriving (§II-I)
// ---------------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct Mover {
    hops: Vec<usize>,
    counter: i64,
}

#[derive(Serialize, Deserialize)]
enum MoverMsg {
    Bump(i64),
    Hop(usize),
    Report { done: Future<(Vec<i64>, i64)> },
}

impl Chare for Mover {
    type Msg = MoverMsg;
    type Init = ();
    fn create(_: (), ctx: &mut Ctx) -> Self {
        Mover {
            hops: vec![ctx.my_pe()],
            counter: 0,
        }
    }
    fn receive(&mut self, msg: MoverMsg, ctx: &mut Ctx) {
        match msg {
            MoverMsg::Bump(v) => self.counter += v,
            MoverMsg::Hop(to) => {
                self.hops.push(to);
                ctx.migrate_me(to);
            }
            MoverMsg::Report { done } => {
                let hops = self.hops.iter().map(|&p| p as i64).collect();
                ctx.send_future(&done, (hops, self.counter));
            }
        }
    }
}

#[test]
fn manual_migration_preserves_state_and_routing() {
    for (name, backend) in both_backends() {
        Runtime::new(4)
            .backend(backend)
            .register_migratable::<Mover>()
            .run(move |co| {
                let m = co.ctx().create_chare::<Mover>((), Some(0));
                m.send(co.ctx(), MoverMsg::Bump(1));
                m.send(co.ctx(), MoverMsg::Hop(2));
                // These must follow the chare to PE 2 (forwarding).
                m.send(co.ctx(), MoverMsg::Bump(10));
                m.send(co.ctx(), MoverMsg::Hop(3));
                m.send(co.ctx(), MoverMsg::Bump(100));
                let done = co.ctx().create_future::<(Vec<i64>, i64)>();
                m.send(co.ctx(), MoverMsg::Report { done });
                let (hops, counter) = co.get(&done);
                assert_eq!(counter, 111, "backend {name}: all bumps must arrive");
                assert_eq!(hops, vec![0, 2, 3], "backend {name}");
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// Sparse arrays: dynamic insertion, custom placement, element messaging
// ---------------------------------------------------------------------------

struct SparseCell;

#[derive(Serialize, Deserialize)]
enum SparseMsg {
    Where,
}

impl Chare for SparseCell {
    type Msg = SparseMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        SparseCell
    }
    fn receive(&mut self, msg: SparseMsg, ctx: &mut Ctx) {
        let SparseMsg::Where = msg;
        ctx.reply(ctx.my_pe() as i64);
    }
}

#[test]
fn sparse_array_insert_and_address() {
    for (name, backend) in both_backends() {
        Runtime::new(4)
            .backend(backend)
            .register::<SparseCell>()
            .run(move |co| {
                let arr = co.ctx().create_sparse::<SparseCell>(ArrayOpts::default());
                // Insert scattered 2-D indices, one pinned to PE 3.
                arr.insert(co.ctx(), (5, 7), (), None);
                arr.insert(co.ctx(), (100, -3), (), Some(3));
                arr.done_inserting(co.ctx());
                let f = arr.elem((100, -3)).call::<i64>(co.ctx(), SparseMsg::Where);
                assert_eq!(co.get(&f), 3, "backend {name}: pinned insert");
                let f = arr.elem((5, 7)).call::<i64>(co.ctx(), SparseMsg::Where);
                let pe = co.get(&f);
                assert!((pe as usize) < 4, "backend {name}");
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// Custom reducer (§II-F1) + gather + reduction delivered to a chare method
// ---------------------------------------------------------------------------

struct RedWorker;

#[derive(Serialize, Deserialize)]
enum RedWorkerMsg {
    GatherUp {
        target: Future<RedData>,
    },
    Hypot {
        target: Future<RedData>,
        reducer_id: u32,
    },
}

impl Chare for RedWorker {
    type Msg = RedWorkerMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        RedWorker
    }
    fn receive(&mut self, msg: RedWorkerMsg, ctx: &mut Ctx) {
        match msg {
            RedWorkerMsg::GatherUp { target } => {
                let v = ctx.my_index().first() * 2;
                ctx.contribute_gather(&v, RedTarget::Future(target.id()));
            }
            RedWorkerMsg::Hypot { target, reducer_id } => {
                let x = (ctx.my_index().first() + 1) as f64;
                ctx.contribute(
                    RedData::F64(x),
                    Reducer::Custom(reducer_id),
                    RedTarget::Future(target.id()),
                );
            }
        }
    }
}

#[test]
fn gather_reduction_sorted_by_index() {
    for (_, backend) in both_backends() {
        Runtime::new(3)
            .backend(backend)
            .register::<RedWorker>()
            .run(|co| {
                let arr = co.ctx().create_array::<RedWorker>(&[7], ());
                let f = co.ctx().create_future::<RedData>();
                arr.send(co.ctx(), RedWorkerMsg::GatherUp { target: f });
                match co.get(&f) {
                    RedData::Gather(items) => {
                        assert_eq!(items.len(), 7);
                        for (i, (ix, bytes)) in items.iter().enumerate() {
                            assert_eq!(ix.first(), i as i32, "sorted by index");
                            let v: i32 = charm_wire::Codec::Fast.decode(bytes).unwrap();
                            assert_eq!(v, i as i32 * 2);
                        }
                    }
                    other => panic!("expected gather, got {other:?}"),
                }
                co.ctx().exit();
            });
    }
}

#[test]
fn custom_reducer_over_array() {
    for (_, backend) in both_backends() {
        let mut rt = Runtime::new(2).backend(backend).register::<RedWorker>();
        let reducer = rt.add_reducer("hypot", |parts| {
            let s: f64 = parts.iter().map(|p| p.as_f64().powi(2)).sum();
            RedData::F64(s.sqrt())
        });
        let Reducer::Custom(reducer_id) = reducer else {
            panic!()
        };
        rt.run(move |co| {
            let arr = co.ctx().create_array::<RedWorker>(&[2], ());
            let f = co.ctx().create_future::<RedData>();
            arr.send(
                co.ctx(),
                RedWorkerMsg::Hypot {
                    target: f,
                    reducer_id,
                },
            );
            // members contribute 1.0 and 2.0 → sqrt(5)
            let v = co.get(&f).as_f64();
            assert!((v - 5.0f64.sqrt()).abs() < 1e-12);
            co.ctx().exit();
        });
    }
}

// ---------------------------------------------------------------------------
// Reduction targeting a chare entry (`reduced` hook) and a whole collection
// ---------------------------------------------------------------------------

struct RedSink {
    done: Option<Future<i64>>,
    bcast_seen: i64,
}

#[derive(Serialize, Deserialize)]
enum RedSinkMsg {
    Arm { done: Future<i64> },
    ContributeAll { to_collection: bool },
    Check { done: Future<i64> },
}

impl Chare for RedSink {
    type Msg = RedSinkMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        RedSink {
            done: None,
            bcast_seen: 0,
        }
    }
    fn receive(&mut self, msg: RedSinkMsg, ctx: &mut Ctx) {
        match msg {
            RedSinkMsg::Arm { done } => self.done = Some(done),
            RedSinkMsg::ContributeAll { to_collection } => {
                let me = ctx.my_index().first() as i64 + 1;
                let target = if to_collection {
                    ctx.this_proxy::<RedSink>().reduction_target(7)
                } else {
                    ctx.this_proxy::<RedSink>().elem(0).reduction_target(9)
                };
                ctx.contribute(RedData::I64(me), Reducer::Sum, target);
            }
            RedSinkMsg::Check { done } => ctx.send_future(&done, self.bcast_seen),
        }
    }
    fn reduced(&mut self, tag: u32, data: RedData, ctx: &mut Ctx) {
        match tag {
            9 => {
                // Element target: only index 0 sees it.
                assert_eq!(ctx.my_index().first(), 0);
                if let Some(done) = self.done.take() {
                    ctx.send_future(&done, data.as_i64());
                }
            }
            7 => self.bcast_seen += data.as_i64(),
            _ => panic!("unexpected reduction tag {tag}"),
        }
    }
}

#[test]
fn reduction_to_element_entry() {
    for (_, backend) in both_backends() {
        Runtime::new(3)
            .backend(backend)
            .register::<RedSink>()
            .run(|co| {
                let arr = co.ctx().create_array::<RedSink>(&[6], ());
                let done = co.ctx().create_future::<i64>();
                arr.elem(0).send(co.ctx(), RedSinkMsg::Arm { done });
                arr.send(
                    co.ctx(),
                    RedSinkMsg::ContributeAll {
                        to_collection: false,
                    },
                );
                assert_eq!(co.get(&done), 1 + 2 + 3 + 4 + 5 + 6);
                co.ctx().exit();
            });
    }
}

#[test]
fn reduction_broadcast_to_collection() {
    for (_, backend) in both_backends() {
        Runtime::new(2)
            .backend(backend)
            .register::<RedSink>()
            .run(|co| {
                let arr = co.ctx().create_array::<RedSink>(&[4], ());
                arr.send(
                    co.ctx(),
                    RedSinkMsg::ContributeAll {
                        to_collection: true,
                    },
                );
                // Every member eventually sees the broadcast result (10).
                // Poll with a second pass: ask each element.
                for i in 0..4 {
                    loop {
                        let done = co.ctx().create_future::<i64>();
                        arr.elem(i).send(co.ctx(), RedSinkMsg::Check { done });
                        if co.get(&done) == 10 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// Quiescence detection
// ---------------------------------------------------------------------------

struct Chain;

#[derive(Serialize, Deserialize)]
enum ChainMsg {
    Pass(u32),
}

impl Chare for Chain {
    type Msg = ChainMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Chain
    }
    fn receive(&mut self, msg: ChainMsg, ctx: &mut Ctx) {
        let ChainMsg::Pass(hops) = msg;
        if hops > 0 {
            let npes = ctx.num_pes();
            let next = (ctx.my_index().first() as usize + 1) % npes;
            ctx.this_proxy::<Chain>()
                .elem(next as i32)
                .send(ctx, ChainMsg::Pass(hops - 1));
        }
    }
}

#[test]
fn quiescence_detection_waits_for_chain() {
    for (name, backend) in both_backends() {
        Runtime::new(4)
            .backend(backend)
            .register::<Chain>()
            .run(move |co| {
                let grp = co.ctx().create_group::<Chain>(());
                grp.elem(0).send(co.ctx(), ChainMsg::Pass(40));
                let f = co.ctx().create_future::<()>();
                co.ctx().start_quiescence(&f);
                co.get(&f); // returns only after the 40-hop chain drains
                let _ = name;
                co.ctx().exit();
            });
    }
}

// ---------------------------------------------------------------------------
// AtSync load balancing with a trivial "move everything to PE 0" strategy
// ---------------------------------------------------------------------------

struct AllToZero;

impl LbStrategy for AllToZero {
    fn assign(&self, stats: &LbStats) -> Vec<(ChareId, Pe)> {
        stats
            .chares
            .iter()
            .filter(|c| c.migratable && c.pe != 0)
            .map(|c| (c.id, 0))
            .collect()
    }
    fn name(&self) -> &'static str {
        "all-to-zero"
    }
}

#[derive(Serialize, Deserialize)]
struct LbWorker {
    resumed: bool,
}

#[derive(Serialize, Deserialize)]
enum LbWorkerMsg {
    Sync,
    WhereNow { done: Future<RedData> },
}

impl Chare for LbWorker {
    type Msg = LbWorkerMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        LbWorker { resumed: false }
    }
    fn receive(&mut self, msg: LbWorkerMsg, ctx: &mut Ctx) {
        match msg {
            LbWorkerMsg::Sync => ctx.at_sync(),
            LbWorkerMsg::WhereNow { done } => {
                assert!(self.resumed, "resume_from_sync must precede new work");
                ctx.contribute(
                    RedData::I64(ctx.my_pe() as i64),
                    Reducer::Max,
                    RedTarget::Future(done.id()),
                );
            }
        }
    }
    fn resume_from_sync(&mut self, _ctx: &mut Ctx) {
        self.resumed = true;
    }
}

#[test]
fn at_sync_lb_migrates_and_resumes() {
    for (name, backend) in both_backends() {
        let report = Runtime::new(4)
            .backend(backend)
            .register_migratable::<LbWorker>()
            .lb_strategy(Arc::new(AllToZero))
            .run(move |co| {
                let arr = co.ctx().create_array_with::<LbWorker>(
                    &[8],
                    (),
                    ArrayOpts {
                        placement: Placement::Block,
                        use_lb: true,
                    },
                );
                arr.send(co.ctx(), LbWorkerMsg::Sync);
                // After the LB epoch every chare should sit on PE 0: the max
                // over current PEs reduces to 0.
                let done = co.ctx().create_future::<RedData>();
                arr.send(co.ctx(), LbWorkerMsg::WhereNow { done });
                assert_eq!(co.get(&done).as_i64(), 0, "backend {name}");
                co.ctx().exit();
            });
        assert!(report.lb_epochs >= 1, "backend {name}");
        assert!(
            report.migrations >= 6,
            "backend {name}: {}",
            report.migrations
        );
    }
}

// ---------------------------------------------------------------------------
// Determinism of the simulated backend
// ---------------------------------------------------------------------------

#[test]
fn sim_backend_is_deterministic() {
    let run = || {
        let mut order = Vec::new();
        let r = Runtime::new(4)
            .backend(Backend::Sim(MachineModel::local(4)))
            .meter_compute(false)
            .register::<Chain>()
            .run(|co| {
                let grp = co.ctx().create_group::<Chain>(());
                grp.elem(1).send(co.ctx(), ChainMsg::Pass(13));
                let f = co.ctx().create_future::<()>();
                co.ctx().start_quiescence(&f);
                co.get(&f);
                co.ctx().exit();
            });
        order.push((r.msgs, r.entries, r.bytes));
        order
    };
    assert_eq!(
        run(),
        run(),
        "identical runs must produce identical traffic"
    );
}
