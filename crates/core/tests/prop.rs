//! Property-based tests of core invariants: spanning trees, placement,
//! reduction algebra, index encoding, and simulated-backend determinism.

use charm_core::prelude::*;
use charm_core::reduction::{combine, CustomReducers};
use charm_core::Index;
use charm_sim::MachineModel;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Spanning trees
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trees_span_and_agree(
        arity in 1usize..9,
        npes in 1usize..70,
        root_k in 0usize..1000,
        cpn in prop::option::of(1usize..9),
    ) {
        let root = root_k % npes;
        let shape = TreeShape { arity, cores_per_node: cpn };
        // Every non-root has a parent that lists it as a child; sizes add up.
        let mut visited = 0usize;
        let mut stack = vec![root];
        while let Some(pe) = stack.pop() {
            visited += 1;
            for c in shape.children(pe, root, npes) {
                prop_assert_eq!(shape.parent(c, root, npes), Some(pe));
                stack.push(c);
            }
        }
        prop_assert_eq!(visited, npes, "tree must span all PEs exactly once");
        prop_assert_eq!(shape.parent(root, root, npes), None);
    }

    // -----------------------------------------------------------------------
    // Reduction algebra: tree combining in any grouping equals a flat fold.
    // -----------------------------------------------------------------------

    #[test]
    fn reduction_grouping_invariance(
        values in prop::collection::vec(-1000i64..1000, 1..24),
        split in 1usize..23,
        op_pick in 0usize..4,
    ) {
        let ops = [Reducer::Sum, Reducer::Max, Reducer::Min, Reducer::Product];
        let op = ops[op_pick];
        let c = CustomReducers::default();
        let flat = combine(
            op,
            values.iter().map(|&v| RedData::I64(v)).collect(),
            &c,
        );
        // Split into two subtrees combined separately, then merged — the
        // shape the PE tree produces.
        let k = split.min(values.len() - 1).max(1);
        let (a, b) = values.split_at(k.min(values.len()-1).max(1));
        if a.is_empty() || b.is_empty() {
            return Ok(());
        }
        let pa = combine(op, a.iter().map(|&v| RedData::I64(v)).collect(), &c);
        let pb = combine(op, b.iter().map(|&v| RedData::I64(v)).collect(), &c);
        let tree = combine(op, vec![pa, pb], &c);
        prop_assert_eq!(flat, tree);
    }

    // -----------------------------------------------------------------------
    // Index
    // -----------------------------------------------------------------------

    #[test]
    fn index_roundtrips_and_orders(coords in prop::collection::vec(-1000i32..1000, 0..7)) {
        let ix = Index::new(&coords);
        prop_assert_eq!(ix.coords(), &coords[..]);
        prop_assert_eq!(ix.dims(), coords.len());
        // Serde roundtrip under both codecs.
        for codec in [charm_wire::Codec::Fast, charm_wire::Codec::Pickle] {
            let bytes = codec.encode(&ix).unwrap();
            let back: Index = codec.decode(&bytes).unwrap();
            prop_assert_eq!(back, ix);
        }
        // Hash is deterministic.
        prop_assert_eq!(ix.stable_hash(), Index::new(&coords).stable_hash());
    }

    #[test]
    fn index_ordering_is_lexicographic_on_equal_dims(
        a in prop::collection::vec(-50i32..50, 3),
        b in prop::collection::vec(-50i32..50, 3),
    ) {
        let (ia, ib) = (Index::new(&a), Index::new(&b));
        prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
    }
}

// ---------------------------------------------------------------------------
// Simulated backend determinism under a randomized (but seeded) workload
// ---------------------------------------------------------------------------

struct Chaos {
    acc: u64,
}

#[derive(Serialize, Deserialize)]
enum ChaosMsg {
    Kick { hops: u32, seed: u64 },
    Tally { done: Future<RedData> },
}

impl Chare for Chaos {
    type Msg = ChaosMsg;
    type Init = ();
    fn create(_: (), _: &mut Ctx) -> Self {
        Chaos { acc: 0 }
    }
    fn receive(&mut self, msg: ChaosMsg, ctx: &mut Ctx) {
        match msg {
            ChaosMsg::Kick { hops, seed } => {
                self.acc = self.acc.wrapping_add(seed);
                if hops > 0 {
                    // Pseudo-random fan-out derived from the seed only.
                    let n = ctx.num_pes() as u64 * 4;
                    let next = (seed.wrapping_mul(6364136223846793005).wrapping_add(1)) % n;
                    let fan = 1 + (seed % 2) as u32;
                    let me = ctx.this_proxy::<Chaos>();
                    for k in 0..fan {
                        me.elem((next as i32 + k as i32) % n as i32).send(
                            ctx,
                            ChaosMsg::Kick {
                                hops: hops - 1,
                                seed: seed.wrapping_add(k as u64 + 1).wrapping_mul(2654435761),
                            },
                        );
                    }
                }
            }
            ChaosMsg::Tally { done } => ctx.contribute(
                RedData::I64(self.acc as i64),
                Reducer::Sum,
                RedTarget::Future(done.id()),
            ),
        }
    }
}

fn chaos_run(seed: u64) -> (i64, u64, u64) {
    let out = std::sync::Arc::new(std::sync::Mutex::new(0i64));
    let out2 = std::sync::Arc::clone(&out);
    let report = Runtime::new(4)
        .backend(Backend::Sim(MachineModel::local(4)))
        .meter_compute(false)
        .register::<Chaos>()
        .run(move |co| {
            let arr = co.ctx().create_array::<Chaos>(&[16], ());
            for k in 0..6 {
                arr.elem(k).send(
                    co.ctx(),
                    ChaosMsg::Kick {
                        hops: 12,
                        seed: seed.wrapping_add(k as u64),
                    },
                );
            }
            let q = co.ctx().create_future::<()>();
            co.ctx().start_quiescence(&q);
            co.get(&q);
            let done = co.ctx().create_future::<RedData>();
            arr.send(co.ctx(), ChaosMsg::Tally { done });
            *out2.lock().unwrap() = co.get(&done).as_i64();
            co.ctx().exit();
        });
    let tally = *out.lock().unwrap();
    (tally, report.msgs, report.bytes)
}

#[test]
fn sim_chaos_is_bitwise_deterministic() {
    for seed in [1u64, 0xDEADBEEF, 42] {
        let a = chaos_run(seed);
        let b = chaos_run(seed);
        assert_eq!(a, b, "seed {seed}: identical runs must match exactly");
    }
    // Different seeds take different paths.
    assert_ne!(chaos_run(1).0, chaos_run(2).0);
}

#[test]
fn chaos_also_completes_on_threads_backend() {
    // Same workload, real threads: the tally is order-independent
    // (wrapping adds commute), so it must equal the sim result.
    let sim_tally = chaos_run(7).0;
    let out = std::sync::Arc::new(std::sync::Mutex::new(0i64));
    let out2 = std::sync::Arc::clone(&out);
    Runtime::new(4).register::<Chaos>().run(move |co| {
        let arr = co.ctx().create_array::<Chaos>(&[16], ());
        for k in 0..6 {
            arr.elem(k).send(
                co.ctx(),
                ChaosMsg::Kick {
                    hops: 12,
                    seed: 7u64.wrapping_add(k as u64),
                },
            );
        }
        let q = co.ctx().create_future::<()>();
        co.ctx().start_quiescence(&q);
        co.get(&q);
        let done = co.ctx().create_future::<RedData>();
        arr.send(co.ctx(), ChaosMsg::Tally { done });
        *out2.lock().unwrap() = co.get(&done).as_i64();
        co.ctx().exit();
    });
    let thr = *out.lock().unwrap();
    assert_eq!(thr, sim_tally, "backends must agree on the final state");
}
