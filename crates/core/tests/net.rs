//! Net backend acceptance suite (`--features analyze`, DESIGN.md §13):
//! real multi-process runs over loopback TCP, with this test binary
//! re-exec'd as the worker processes.
//!
//! The workhorse is the same schedule-independent ring stencil as `ft.rs`:
//! each round every element ships its value to its right neighbor and
//! combines the value arriving from the left, with a quiescence wait
//! between rounds. The acceptance claims:
//!
//! 1. a clean 4-process run computes exactly what the sim backend
//!    computes, with identical logical message/entry counters;
//! 2. a worker SIGKILLed mid-stencil (a real `kill -9`, injected through
//!    the analyze harness) is detected, respawned, restored from the disk
//!    checkpoint, and the run finishes identical to the failure-free run;
//! 3. failure modes are typed errors (`Bootstrap`, `PeerLost`,
//!    `RecoveryImpossible`), never hangs or panics.
//!
//! Worker processes never return from `Runtime::run` — they exit inside
//! the runtime when the run completes — so everything after `run()` in a
//! test body executes on the root only. Code *before* `run()` runs in
//! every process and must stay idempotent (checkpoint-dir cleanup is
//! guarded by `is_net_worker`).

#![cfg(feature = "analyze")]

use std::sync::{Arc, Mutex};
use std::time::Duration;

use charm_core::analyze::InjectFault;
use charm_core::prelude::*;
use charm_core::{is_net_worker, CollectionId, NetCfg, RunError, Store, TelemetryCfg};
use serde::{Deserialize, Serialize};

const N: i32 = 8;
const NPES: usize = 4;
const ROUNDS: i64 = 6;

/// Loopback cluster with test-sized timeouts. `test` names the one test
/// the re-exec'd child should run.
fn net_cfg(test: &str) -> NetCfg {
    NetCfg::new()
        .worker_args([test, "--exact"])
        .heartbeat(Duration::from_millis(100), Duration::from_millis(1500))
        .rendezvous_timeout(Duration::from_secs(20))
        .drain_timeout(Duration::from_secs(5))
}

/// A per-test scratch directory shared by all processes of the run. The
/// path must not depend on the pid (workers are different processes), and
/// only the root may wipe it — a respawned worker re-runs the test body
/// and must not delete the checkpoints the recovery is about to restore.
fn shared_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("charmrs-net-{tag}"));
    if !is_net_worker() {
        let _ = std::fs::remove_dir_all(&d);
    }
    d
}

// ---------------------------------------------------------------------------
// The ring stencil (same computation as ft.rs).
// ---------------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct Ring {
    cur: i64,
    rounds_done: i64,
    hist: Vec<i64>,
    sent: bool,
    recv: Option<i64>,
}

#[derive(Serialize, Deserialize)]
enum RingMsg {
    DoRound,
    Shift(i64),
    RoundsDone,
    Hist,
}

impl Chare for Ring {
    type Msg = RingMsg;
    type Init = ();
    fn create(_: (), ctx: &mut Ctx) -> Self {
        Ring {
            cur: ctx.my_index().first() as i64 + 1,
            rounds_done: 0,
            hist: Vec::new(),
            sent: false,
            recv: None,
        }
    }
    fn receive(&mut self, msg: RingMsg, ctx: &mut Ctx) {
        match msg {
            RingMsg::DoRound => {
                let right = ((ctx.my_index().first() + 1) % N) as usize;
                let arr = ctx.this_proxy::<Ring>();
                arr.elem(right).send(ctx, RingMsg::Shift(self.cur));
                self.sent = true;
            }
            RingMsg::Shift(v) => self.recv = Some(v),
            RingMsg::RoundsDone => ctx.reply(self.rounds_done),
            RingMsg::Hist => {
                let h = self.hist.clone();
                ctx.reply(h);
            }
        }
        // A round commits only once this element both shipped its value
        // and received the neighbor's — arrival order within the round
        // cannot matter.
        if self.sent {
            if let Some(v) = self.recv.take() {
                self.sent = false;
                self.cur = self.cur * 3 + v;
                self.rounds_done += 1;
                self.hist.push(self.cur);
            }
        }
    }
}

fn expected_hists(rounds: i64) -> Vec<Vec<i64>> {
    let n = N as usize;
    let mut cur: Vec<i64> = (0..n).map(|i| i as i64 + 1).collect();
    let mut hists = vec![Vec::new(); n];
    for _ in 0..rounds {
        let prev = cur.clone();
        for (i, h) in hists.iter_mut().enumerate() {
            cur[i] = prev[i] * 3 + prev[(i + n - 1) % n];
            h.push(cur[i]);
        }
    }
    hists
}

/// Drive rounds `from..ROUNDS` (QD between rounds), collect every
/// element's history into `out`, exit.
fn drive(co: &mut Co<Main>, arr: &Proxy<Ring>, from: i64, out: &Arc<Mutex<Vec<Vec<i64>>>>) {
    for _ in from..ROUNDS {
        arr.send(co.ctx(), RingMsg::DoRound);
        let q = co.ctx().create_future::<()>();
        co.ctx().start_quiescence(&q);
        co.get(&q);
    }
    let mut hists = Vec::new();
    for i in 0..N as usize {
        let f = arr.elem(i).call::<Vec<i64>>(co.ctx(), RingMsg::Hist);
        hists.push(co.get(&f));
    }
    *out.lock().unwrap() = hists;
    co.ctx().exit();
}

fn restored_ring() -> Proxy<Ring> {
    Proxy::<Ring>::restored(CollectionId { creator: 0, seq: 0 })
}

/// One fault-free stencil run on the given backend; returns (histories,
/// report).
fn stencil_once(rt: Runtime) -> (Vec<Vec<i64>>, RunReport) {
    let out = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let report = rt.register_migratable::<Ring>().run(move |co| {
        let arr = co.ctx().create_array::<Ring>(&[N], ());
        drive(co, &arr, 0, &sink);
    });
    let hists = out.lock().unwrap().clone();
    (hists, report)
}

// ---------------------------------------------------------------------------
// 1. Clean multi-process run ≡ sim run.
// ---------------------------------------------------------------------------

/// Four real processes over loopback compute the exact stencil result, and
/// the logical counters (QD-counted messages, entry activations,
/// migrations) match the deterministic sim backend bit for bit.
#[test]
fn four_process_run_matches_sim_backend() {
    // The sim baseline is root-only work; workers skip straight to the
    // net run's worker branch.
    let sim = if is_net_worker() {
        None
    } else {
        let rt = Runtime::new(NPES)
            .simulated(charm_sim::MachineModel::local(NPES))
            .meter_compute(false);
        Some(stencil_once(rt))
    };

    let rt = Runtime::new(NPES).backend(Backend::Net(net_cfg(
        "four_process_run_matches_sim_backend",
    )));
    let (hists, report) = stencil_once(rt);

    let (sim_hists, sim_report) = sim.expect("only the root returns from the net run");
    let expected = expected_hists(ROUNDS);
    assert_eq!(sim_hists, expected, "sim baseline diverged");
    assert_eq!(hists, expected, "net run diverged from the expected result");
    assert!(report.clean_exit, "net run must end via exit()");
    assert_eq!(report.recoveries, 0);
    assert_eq!(report.pe_stats.len(), NPES, "one perf block per process");
    assert_eq!(
        (report.msgs, report.entries, report.migrations),
        (sim_report.msgs, sim_report.entries, sim_report.migrations),
        "logical counters must not depend on the backend"
    );
    let stale: u64 = report.pe_stats.iter().map(|p| p.stale_discarded).sum();
    assert_eq!(stale, 0, "no recovery, so nothing may be discarded");
}

// ---------------------------------------------------------------------------
// 2. SIGKILL mid-run: detect, respawn, restore, finish identically.
// ---------------------------------------------------------------------------

/// A worker process SIGKILLs itself mid-stencil (`kill -9` of a real OS
/// process, injected at a deterministic delivery). The root must surface
/// the death, respawn the PE at a bumped incarnation, restore everyone
/// from the shared-disk checkpoint, and finish with results identical to
/// the failure-free run. No stale-epoch envelope may *deliver* (the result
/// comparison and the epoch guard enforce it); discarded ones are counted.
#[test]
fn sigkill_mid_run_recovers_from_disk_checkpoint() {
    let ckpt = shared_dir("sigkill-ckpt");
    let (rt, _probe) = Runtime::new(NPES)
        .backend(Backend::Net(net_cfg(
            "sigkill_mid_run_recovers_from_disk_checkpoint",
        )))
        .auto_checkpoint(1, Store::Disk(ckpt.clone()))
        // PE 2 hosts elements 4 and 5 (Block placement): two QD-counted
        // deliveries per round plus two inserts, so the 11th delivery
        // lands mid-round with committed checkpoint generations behind it.
        .analyze_inject(InjectFault::KillPe {
            pe: 2,
            after_nth: 10,
        });
    let out = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let rt = rt.recover_with(move |co| {
        let arr = restored_ring();
        // Progress is discovered from restored chare state — coroutine
        // stacks are not part of a checkpoint.
        let f = arr.elem(0usize).call::<i64>(co.ctx(), RingMsg::RoundsDone);
        let from = co.get(&f);
        drive(co, &arr, from, &sink);
    });
    let sink = Arc::clone(&out);
    let report = rt.register_migratable::<Ring>().run(move |co| {
        let arr = co.ctx().create_array::<Ring>(&[N], ());
        drive(co, &arr, 0, &sink);
    });

    assert_eq!(report.recoveries, 1, "expected exactly one restart");
    assert!(report.clean_exit);
    assert_eq!(
        out.lock().unwrap().clone(),
        expected_hists(ROUNDS),
        "recovered run diverged from the failure-free result"
    );
    let stale: u64 = report.pe_stats.iter().map(|p| p.stale_discarded).sum();
    println!("recovery survived a real SIGKILL; stale frames discarded: {stale}");
    let _ = std::fs::remove_dir_all(ckpt);
}

/// The same kill without disk checkpointing is a typed error: in-memory
/// buddy images die with the worker processes holding them, and the root
/// must say so rather than attempt a doomed restore.
#[test]
fn sigkill_with_memory_store_is_recovery_impossible() {
    let (rt, _probe) = Runtime::new(NPES)
        .backend(Backend::Net(net_cfg(
            "sigkill_with_memory_store_is_recovery_impossible",
        )))
        .auto_checkpoint(1, Store::Memory)
        .analyze_inject(InjectFault::KillPe {
            pe: 2,
            after_nth: 10,
        });
    let out = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let rt = rt.recover_with(|_co| unreachable!("recovery must be refused"));
    let err = rt
        .register_migratable::<Ring>()
        .try_run(move |co| {
            let arr = co.ctx().create_array::<Ring>(&[N], ());
            drive(co, &arr, 0, &sink);
        })
        .unwrap_err();
    assert!(
        matches!(err, RunError::RecoveryImpossible { .. }),
        "unexpected error: {err}"
    );
}

/// Without recovery armed at all, a killed worker surfaces as `PeerLost`
/// with the incarnation it died in.
#[test]
fn sigkill_without_recovery_is_peer_lost() {
    let (rt, _probe) = Runtime::new(NPES)
        .backend(Backend::Net(net_cfg(
            "sigkill_without_recovery_is_peer_lost",
        )))
        .analyze_inject(InjectFault::KillPe {
            pe: 1,
            after_nth: 10,
        });
    let out = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let err = rt
        .register_migratable::<Ring>()
        .try_run(move |co| {
            let arr = co.ctx().create_array::<Ring>(&[N], ());
            drive(co, &arr, 0, &sink);
        })
        .unwrap_err();
    assert!(
        matches!(
            err,
            RunError::PeerLost {
                pe: 1,
                incarnation: 0
            }
        ),
        "unexpected error: {err}"
    );
}

// ---------------------------------------------------------------------------
// 3. Bootstrap and configuration failures are typed, prompt errors.
// ---------------------------------------------------------------------------

/// Externally-launched mode with no launcher ever starting workers: the
/// rendezvous window lapses and `try_run` returns `Bootstrap` naming the
/// missing PEs, instead of hanging.
#[test]
fn bootstrap_times_out_when_no_worker_arrives() {
    let mut cfg = net_cfg("bootstrap_times_out_when_no_worker_arrives")
        .rendezvous_timeout(Duration::from_millis(500));
    cfg = cfg.external("127.0.0.1:0".parse().unwrap());
    let err = Runtime::new(3)
        .backend(Backend::Net(cfg))
        .try_run(|co| co.ctx().exit())
        .unwrap_err();
    match err {
        RunError::Bootstrap(msg) => {
            assert!(
                msg.contains('1') && msg.contains('2'),
                "error should name the missing PEs: {msg}"
            );
        }
        other => panic!("expected Bootstrap, got: {other}"),
    }
}

/// Telemetry sweeps have no cross-process wire form; configuring them with
/// the Net backend is rejected up front, before any process spawns.
#[test]
fn telemetry_on_net_backend_is_rejected_up_front() {
    let err = Runtime::new(2)
        .backend(Backend::Net(net_cfg(
            "telemetry_on_net_backend_is_rejected_up_front",
        )))
        .telemetry(TelemetryCfg::every(1))
        .try_run(|co| co.ctx().exit())
        .unwrap_err();
    assert!(
        matches!(err, RunError::Bootstrap(_)),
        "unexpected error: {err}"
    );
}
