//! Scale structures: 64k-PE home hashing, forwarding-chain collapse, and
//! cluster-size sim smoke runs (the CI `scale` job runs the 4,096-PE test;
//! the 65,536-PE weak-scaling check is `#[ignore]` — run it with
//! `cargo test -p charm-core --test scale -- --ignored`).

use std::sync::{Arc, Mutex};
use std::time::Duration;

use charm_core::prelude::*;
use charm_core::Runtime;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Home-PE hashing stays uniform at cluster scale
// ---------------------------------------------------------------------------

/// `home_pe` for dense/sparse elements is `stable_hash % npes`; location
/// management degrades to hot spots if the hash clumps. Bucketing 65,536
/// single-dim indices over 65,536 PEs into 256-PE groups, every group
/// must stay within ±40% of the Poisson mean.
#[test]
fn home_hash_spreads_uniformly_at_64k_pes() {
    let npes = 65_536u64;
    let groups = 256usize;
    let per_group = npes as usize / groups;
    let mut counts = vec![0u32; groups];
    for i in 0..npes {
        let pe = Index::from(i as i32).stable_hash() % npes;
        counts[pe as usize / per_group] += 1;
    }
    let mean = npes as f64 / groups as f64;
    for (g, &c) in counts.iter().enumerate() {
        assert!(
            (c as f64) > mean * 0.6 && (c as f64) < mean * 1.4,
            "group {g} holds {c} homes (mean {mean}) — stable_hash clumps"
        );
    }
}

// ---------------------------------------------------------------------------
// Forwarding chains stay bounded across long migration tours
// ---------------------------------------------------------------------------

/// A chare that hops along a fixed tour of PEs. Each hop leaves a
/// forwarding stub behind; the self-sent `Tour` message chases the chare
/// through them, and the trail-collapse path (every `MAX_FWD_HOPS`
/// arrivals) rewrites the stale stubs.
#[derive(Serialize, Deserialize)]
struct Tourist {
    visits: u64,
}

#[derive(Serialize, Deserialize)]
enum TouristMsg {
    Tour {
        stops: Vec<u64>,
        k: usize,
        done: Future<RedData>,
    },
    Ping,
}

impl Chare for Tourist {
    type Msg = TouristMsg;
    type Init = ();

    fn create(_: (), _: &mut Ctx) -> Self {
        Tourist { visits: 0 }
    }

    fn receive(&mut self, msg: TouristMsg, ctx: &mut Ctx) {
        match msg {
            TouristMsg::Tour { stops, k, done } => {
                self.visits += 1;
                if k < stops.len() {
                    let next = stops[k] as usize;
                    let me = ctx.this_elem::<Tourist>();
                    // Sent before the hop, delivered after it: every leg
                    // routes through at least one freshly-staled PE.
                    me.send(
                        ctx,
                        TouristMsg::Tour {
                            stops,
                            k: k + 1,
                            done,
                        },
                    );
                    ctx.migrate_me(next);
                } else {
                    ctx.contribute(
                        RedData::I64(self.visits as i64),
                        Reducer::Sum,
                        RedTarget::Future(done.id()),
                    );
                }
            }
            TouristMsg::Ping => ctx.reply((self.visits, ctx.my_pe() as u64)),
        }
    }
}

#[test]
fn forwarding_chains_collapse_on_long_tours() {
    let npes = 8usize;
    // 16 hops wrap the 8-PE ring twice — four collapse points at
    // MAX_FWD_HOPS = 4 — and never revisit the current PE consecutively.
    let stops: Vec<u64> = (1..=16).map(|i| i % npes as u64).collect();
    let last = *stops.last().unwrap();
    let hops = stops.len() as u64;
    let report = Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::local(npes)))
        .register_migratable::<Tourist>()
        .run(move |co| {
            let arr = co.ctx().create_array::<Tourist>(&[1], ());
            let elem = arr.elem(0);
            let done = co.ctx().create_future::<RedData>();
            elem.send(co.ctx(), TouristMsg::Tour { stops, k: 0, done });
            assert_eq!(co.get(&done).as_i64(), hops as i64 + 1);
            // The ping (sent only after the tour completed) chases the
            // tour's stub chain; delivery proves routing stays correct
            // through every collapse.
            let f = elem.call::<(u64, u64)>(co.ctx(), TouristMsg::Ping);
            let (visits, pe) = co.get(&f);
            assert_eq!(visits, hops + 1, "tour legs lost or duplicated");
            assert_eq!(pe, last, "chare did not end on the last stop");
            co.ctx().exit();
        });
    assert_eq!(report.migrations, hops);
    let fwd: u64 = report.pe_stats.iter().map(|p| p.fwd_hops).sum();
    // Every tour leg and the final ping may chase stubs, but collapse
    // bounds each chase: without it a 16-leg tour's chains would compound
    // toward O(hops^2) stub traversals.
    assert!(
        fwd <= hops * 4,
        "forwarded {fwd} stub hops over a {hops}-leg tour — chains are not collapsing"
    );
}

// ---------------------------------------------------------------------------
// Cluster-scale sim smoke: hierarchical LB + migration wave at 4,096 PEs
// ---------------------------------------------------------------------------

/// AtSync worker whose load depends only on its index, heavy in the first
/// sixteenth of the index space (Block placement stacks those on the
/// first PEs, forcing a real migration wave).
#[derive(Serialize, Deserialize)]
struct Worker {
    nchares: u32,
    done: Option<Future<RedData>>,
}

#[derive(Serialize, Deserialize)]
enum WorkerMsg {
    Go { done: Future<RedData> },
}

impl Chare for Worker {
    type Msg = WorkerMsg;
    type Init = u32;

    fn create(nchares: u32, _: &mut Ctx) -> Self {
        Worker {
            nchares,
            done: None,
        }
    }

    fn receive(&mut self, WorkerMsg::Go { done }: WorkerMsg, ctx: &mut Ctx) {
        self.done = Some(done);
        let i = ctx.my_index().first() as u64;
        let heavy = i * 16 < self.nchares as u64;
        let ms = i % 7 + 1 + if heavy { 30 } else { 0 };
        ctx.charge(Duration::from_millis(ms));
        ctx.at_sync();
    }

    fn resume_from_sync(&mut self, ctx: &mut Ctx) {
        let done = self.done.take().expect("resumed without Go");
        ctx.contribute(RedData::I64(1), Reducer::Sum, RedTarget::Future(done.id()));
    }
}

fn lb_wave(npes: usize, nchares: u32, group_size: usize) -> charm_core::RunReport {
    let rt = Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::bluewaters(
            npes.div_ceil(32).max(8),
        )))
        .meter_compute(false)
        .register_migratable::<Worker>()
        .lb_mode(LbMode::Tree { group_size });
    rt.run(move |co| {
        let done = co.ctx().create_future::<RedData>();
        let arr = co.ctx().create_array_with::<Worker>(
            &[nchares as i32],
            nchares,
            ArrayOpts {
                placement: Placement::Block,
                use_lb: true,
            },
        );
        arr.send(co.ctx(), WorkerMsg::Go { done });
        assert_eq!(co.get(&done).as_i64(), nchares as i64);
        co.ctx().exit();
    })
}

/// The CI scale smoke: one hierarchical LB epoch over 4,096 simulated PEs
/// with twice as many chares, completing with a real migration wave and
/// bounded per-PE stat residency.
#[test]
fn sim_smoke_4096_pes_tree_lb() {
    let (npes, nchares) = (4_096, 8_192u32);
    let report = lb_wave(npes, nchares, 32);
    assert!(report.clean_exit);
    assert_eq!(report.lb_epochs, 1);
    assert!(report.migrations > 0, "skewed load produced no migrations");
    let peak = report
        .pe_stats
        .iter()
        .map(|p| p.lb_peak_stats)
        .max()
        .unwrap_or(0);
    assert!(peak > 0);
    assert!(
        peak <= nchares as u64 / 4,
        "peak stat residency {peak} is not o(nchares={nchares})"
    );
}

// ---------------------------------------------------------------------------
// 65,536-PE weak scaling (ignored: ~memory- and time-heavy; CI runs the
// 4,096-PE smoke above, EXPERIMENTS.md records the full-scale numbers)
// ---------------------------------------------------------------------------

/// Ring token group: every PE forwards `HOPS` tokens once around its
/// neighborhood; completion sums handled hops.
#[derive(Serialize, Deserialize)]
struct Ring {
    handled: u64,
    deaths: u32,
    done: Option<Future<RedData>>,
}

const RING_TOKENS: u32 = 1;
const RING_HOPS: u32 = 2;

#[derive(Serialize, Deserialize)]
enum RingMsg {
    Start { done: Future<RedData> },
    Token { ttl: u32 },
}

impl Chare for Ring {
    type Msg = RingMsg;
    type Init = ();

    fn create(_: (), _: &mut Ctx) -> Self {
        Ring {
            handled: 0,
            deaths: 0,
            done: None,
        }
    }

    fn receive(&mut self, msg: RingMsg, ctx: &mut Ctx) {
        let me = ctx.this_proxy::<Ring>();
        let next = ((ctx.my_pe() + 1) % ctx.num_pes()) as i32;
        match msg {
            RingMsg::Start { done } => {
                self.done = Some(done);
                for _ in 0..RING_TOKENS {
                    me.elem(next)
                        .send(ctx, RingMsg::Token { ttl: RING_HOPS - 1 });
                }
            }
            RingMsg::Token { ttl } => {
                self.handled += 1;
                if ttl > 0 {
                    me.elem(next).send(ctx, RingMsg::Token { ttl: ttl - 1 });
                } else {
                    self.deaths += 1;
                }
                // Each seeded token dies `RING_HOPS` PEs to the right, so
                // every PE sees exactly `RING_TOKENS` deaths.
                if self.deaths == RING_TOKENS {
                    let done = self.done.take().expect("token before Start");
                    ctx.contribute(
                        RedData::I64(self.handled as i64),
                        Reducer::Sum,
                        RedTarget::Future(done.id()),
                    );
                }
            }
        }
    }
}

#[test]
#[ignore = "65,536 simulated PEs: minutes of wall time; run explicitly"]
fn weak_scaling_completes_at_65536_pes() {
    let npes = 65_536usize;
    let report = Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::bluewaters(2_048)))
        .register::<Ring>()
        .run(move |co| {
            let grp = co.ctx().create_group::<Ring>(());
            let done = co.ctx().create_future::<RedData>();
            grp.send(co.ctx(), RingMsg::Start { done });
            let handled = co.get(&done).as_i64() as u64;
            assert_eq!(
                handled,
                npes as u64 * RING_TOKENS as u64 * RING_HOPS as u64,
                "lost or duplicated ring tokens at 65k PEs"
            );
            co.ctx().exit();
        });
    assert!(report.clean_exit);
    assert_eq!(report.pe_stats.len(), npes);
}
