//! Virtual time.
//!
//! The simulated backend of the runtime advances a per-PE virtual clock.
//! `VTime` is an absolute instant in nanoseconds since simulation start;
//! arithmetic saturates rather than wrapping so a runaway charge cannot make
//! time go backwards.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An absolute virtual-time instant, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(pub u64);

impl VTime {
    /// Simulation start.
    pub const ZERO: VTime = VTime(0);

    /// Construct from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        VTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        VTime(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        VTime(ms.saturating_mul(1_000_000))
    }

    /// Construct from (possibly fractional) seconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        VTime((s.max(0.0) * 1e9) as u64)
    }

    /// This instant expressed in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in fractional microseconds (the unit Chrome
    /// trace-event exporters emit).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: VTime) -> VTime {
        VTime(self.0.max(other.0))
    }
}

impl Add<Duration> for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: Duration) -> VTime {
        VTime(self.0.saturating_add(rhs.as_nanos() as u64))
    }
}

impl Add<u64> for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: u64) -> VTime {
        VTime(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl AddAssign<Duration> for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.as_nanos() as u64);
    }
}

impl Sub<VTime> for VTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: VTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(VTime::from_micros(1), VTime::from_nanos(1_000));
        assert_eq!(VTime::from_millis(1), VTime::from_micros(1_000));
        assert_eq!(VTime::from_secs_f64(1.0), VTime::from_millis(1_000));
    }

    #[test]
    fn fractional_accessors_agree() {
        let t = VTime::from_nanos(1_500);
        assert_eq!(t.as_micros_f64(), 1.5);
        assert_eq!(t.as_millis_f64(), 0.0015);
    }

    #[test]
    fn arithmetic() {
        let t = VTime::from_micros(5) + Duration::from_micros(3);
        assert_eq!(t.as_nanos(), 8_000);
        assert_eq!(t - VTime::from_micros(5), Duration::from_micros(3));
    }

    #[test]
    fn saturating_behavior() {
        let t = VTime(u64::MAX) + 10u64;
        assert_eq!(t.0, u64::MAX);
        // Subtraction below zero yields a zero duration, never a panic.
        assert_eq!(VTime(5) - VTime(10), Duration::ZERO);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(VTime::from_secs_f64(-1.0), VTime::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", VTime(12)), "12ns");
        assert_eq!(format!("{}", VTime(12_000)), "12.000us");
        assert_eq!(format!("{}", VTime(12_000_000)), "12.000ms");
        assert_eq!(format!("{}", VTime(1_500_000_000)), "1.500000s");
    }
}
