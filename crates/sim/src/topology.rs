//! Network topologies for hop-count latency modeling.
//!
//! The paper's machines are a Cray XE with a 3D torus (Blue Waters) and a
//! Cray XC40 with a dragonfly interconnect (Cori). The simulated backend
//! charges per-hop latency from these models; the reduction framework also
//! uses hop counts when building topology-aware spanning trees (§IV-D).

use serde::{Deserialize, Serialize};

/// Interconnect topology over *nodes* (PEs map to nodes elsewhere).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every pair of distinct nodes is one hop apart.
    Flat,
    /// 3D torus with the given dimensions; hops are wrapped Manhattan
    /// distance. `dims` must all be non-zero.
    Torus3D {
        /// Extent of the torus in each dimension.
        dims: [usize; 3],
    },
    /// Two-level dragonfly approximation: nodes within one group are 1 hop
    /// apart, nodes in different groups are 3 (local–global–local).
    Dragonfly {
        /// Number of nodes per group. Must be non-zero.
        group_size: usize,
    },
}

impl Topology {
    /// Coordinates of `node` in a 3D torus.
    fn torus_coords(dims: [usize; 3], node: usize) -> [usize; 3] {
        [
            node % dims[0],
            (node / dims[0]) % dims[1],
            (node / (dims[0] * dims[1])) % dims[2],
        ]
    }

    /// Wrapped per-dimension distance on a ring of length `n`.
    fn ring_dist(a: usize, b: usize, n: usize) -> usize {
        let d = a.abs_diff(b);
        d.min(n - d)
    }

    /// Number of network hops between two nodes. Zero when equal.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        match *self {
            Topology::Flat => 1,
            Topology::Torus3D { dims } => {
                let ca = Self::torus_coords(dims, a);
                let cb = Self::torus_coords(dims, b);
                (0..3)
                    .map(|i| Self::ring_dist(ca[i], cb[i], dims[i]))
                    .sum::<usize>()
                    .max(1)
            }
            Topology::Dragonfly { group_size } => {
                let g = group_size.max(1);
                if a / g == b / g {
                    1
                } else {
                    3
                }
            }
        }
    }

    /// Total node count this topology describes, if bounded (`Flat` and
    /// `Dragonfly` are unbounded).
    pub fn node_count(&self) -> Option<usize> {
        match *self {
            Topology::Torus3D { dims } => Some(dims[0] * dims[1] * dims[2]),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_hops() {
        let t = Topology::Flat;
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 99), 1);
        assert_eq!(t.hops(99, 0), 1);
    }

    #[test]
    fn torus_adjacent_and_wrap() {
        let t = Topology::Torus3D { dims: [4, 4, 4] };
        assert_eq!(t.hops(0, 1), 1); // +x neighbor
        assert_eq!(t.hops(0, 3), 1); // wraps around the x ring
        assert_eq!(t.hops(0, 4), 1); // +y neighbor
        assert_eq!(t.hops(0, 16), 1); // +z neighbor
                                      // Opposite corner of a 4-ring in each dim: 2+2+2.
        assert_eq!(t.hops(0, 2 + 2 * 4 + 2 * 16), 6);
    }

    #[test]
    fn torus_symmetry() {
        let t = Topology::Torus3D { dims: [3, 5, 2] };
        for a in 0..30 {
            for b in 0..30 {
                assert_eq!(t.hops(a, b), t.hops(b, a), "{a} vs {b}");
                if a == b {
                    assert_eq!(t.hops(a, b), 0);
                } else {
                    assert!(t.hops(a, b) >= 1);
                }
            }
        }
    }

    #[test]
    fn dragonfly_groups() {
        let t = Topology::Dragonfly { group_size: 8 };
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 8), 3);
        assert_eq!(t.hops(15, 16), 3);
        assert_eq!(t.hops(9, 9), 0);
    }

    #[test]
    fn torus_node_count() {
        assert_eq!(Topology::Torus3D { dims: [4, 3, 2] }.node_count(), Some(24));
        assert_eq!(Topology::Flat.node_count(), None);
    }
}
