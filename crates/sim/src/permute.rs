//! Schedule permutation: deterministic jitter on message delivery times.
//!
//! The dynamic race detector (charm-core `--features analyze`, DESIGN.md
//! §6) replays one program under many delivery orders and diffs the final
//! state. This module supplies the delivery-order permutation: a seeded
//! xorshift64* stream jitters each message's arrival time, while a
//! per-channel clamp keeps every (src → dst) channel FIFO — the ordering
//! real interconnects (and the threads backend's per-PE queues) guarantee,
//! so only *legal* reorderings are explored: cross-channel interleavings
//! and the arrival order of concurrent messages at one PE.
//!
//! No external RNG dependency: xorshift64* is four lines, deterministic,
//! and plenty for schedule exploration.

use std::collections::HashMap;

use crate::time::VTime;

/// Maximum jitter added to a delivery, in nanoseconds (50 µs — large next
/// to per-message network deltas, so seeds genuinely reorder concurrent
/// messages, small next to end-to-end run times).
const MAX_JITTER_NS: u64 = 50_000;

/// Deterministic, FIFO-preserving delivery-time permuter.
pub struct PermuteSchedule {
    state: u64,
    /// Latest arrival time handed out per (src, dst) channel.
    last: HashMap<(usize, usize), u64>,
}

impl PermuteSchedule {
    /// A permuter for one seed. Seed 0 is mapped to a fixed non-zero value
    /// (xorshift has a zero fixed point); distinct seeds give distinct
    /// schedules.
    pub fn new(seed: u64) -> PermuteSchedule {
        PermuteSchedule {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
            last: HashMap::new(),
        }
    }

    /// Next raw pseudo-random value (xorshift64*).
    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Jittered arrival time for a message on `(src → dst)` nominally
    /// arriving at `nominal`: adds up to [`MAX_JITTER_NS`], then clamps to
    /// strictly after the channel's previous arrival so per-channel FIFO
    /// order is preserved.
    pub fn delivery_time(&mut self, src: usize, dst: usize, nominal: VTime) -> VTime {
        let jitter = self.next() % MAX_JITTER_NS;
        let mut t = nominal.as_nanos() + jitter;
        let last = self.last.entry((src, dst)).or_insert(0);
        if t <= *last {
            t = *last + 1;
        }
        *last = t;
        VTime::from_nanos(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = PermuteSchedule::new(7);
        let mut b = PermuteSchedule::new(7);
        for i in 0..100 {
            let n = VTime::from_nanos(i * 1000);
            assert_eq!(
                a.delivery_time(0, 1, n).as_nanos(),
                b.delivery_time(0, 1, n).as_nanos()
            );
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = PermuteSchedule::new(1);
        let mut b = PermuteSchedule::new(2);
        let n = VTime::from_nanos(1_000_000);
        let ta: Vec<u64> = (0..10)
            .map(|_| a.delivery_time(0, 1, n).as_nanos())
            .collect();
        let tb: Vec<u64> = (0..10)
            .map(|_| b.delivery_time(0, 1, n).as_nanos())
            .collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn per_channel_fifo_is_preserved() {
        let mut p = PermuteSchedule::new(42);
        let mut prev = 0;
        for i in 0..1000 {
            // Nominal times increase slowly; jitter would reorder freely.
            let t = p.delivery_time(2, 3, VTime::from_nanos(i * 10)).as_nanos();
            assert!(t > prev, "channel went backwards at step {i}");
            prev = t;
        }
    }

    #[test]
    fn channels_are_independent() {
        let mut p = PermuteSchedule::new(9);
        let a = p.delivery_time(0, 1, VTime::from_nanos(100)).as_nanos();
        // A later arrival on a different channel may land earlier — only
        // same-channel order is pinned.
        let b = p.delivery_time(1, 0, VTime::from_nanos(50)).as_nanos();
        assert!(b < a || b >= a); // trivially true; the real assertion is no clamp coupling:
        let c = p.delivery_time(1, 0, VTime::from_nanos(51)).as_nanos();
        assert!(c > b);
    }
}
