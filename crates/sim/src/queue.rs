//! Deterministic discrete-event queue.
//!
//! A binary heap ordered by `(time, sequence)`. The sequence number breaks
//! ties in insertion order, which makes simulation runs bit-for-bit
//! reproducible regardless of heap internals — a property the test suites
//! of the runtime and the mini-apps rely on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::VTime;

struct Entry<E> {
    time: VTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A discrete-event queue with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute time `t`.
    pub fn push(&mut self, t: VTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: t,
            seq,
            event,
        });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(VTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<VTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (monotone counter).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(VTime(30), "c");
        q.push(VTime(10), "a");
        q.push(VTime(20), "b");
        assert_eq!(q.pop(), Some((VTime(10), "a")));
        assert_eq!(q.pop(), Some((VTime(20), "b")));
        assert_eq!(q.pop(), Some((VTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(VTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((VTime(5), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(VTime(10), 1);
        q.push(VTime(5), 0);
        assert_eq!(q.pop(), Some((VTime(5), 0)));
        q.push(VTime(7), 2);
        q.push(VTime(7), 3);
        assert_eq!(q.pop(), Some((VTime(7), 2)));
        assert_eq!(q.pop(), Some((VTime(7), 3)));
        assert_eq!(q.pop(), Some((VTime(10), 1)));
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(VTime(42), ());
        q.push(VTime(13), ());
        assert_eq!(q.peek_time(), Some(VTime(13)));
        q.pop();
        assert_eq!(q.peek_time(), Some(VTime(42)));
    }

    #[test]
    fn len_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(VTime(1), ());
        q.push(VTime(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
