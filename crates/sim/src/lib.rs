//! # charm-sim — virtual-time machine model for charm-rs
//!
//! The CharmPy paper evaluates on Blue Waters (Cray XE, 3D torus) and Cori
//! (Cray XC40 KNL, dragonfly) at up to 65k cores. This repository cannot
//! assume Cray hardware, so the runtime offers a *simulated* backend in the
//! spirit of BigSim (itself a Charm++ project): every PE gets a virtual
//! clock, handler execution advances the clock of the PE it ran on, and
//! messages arrive after a modeled network delay. Parallel performance is
//! then read off the virtual clocks.
//!
//! This crate holds the reusable substrate pieces:
//!
//! * [`VTime`] — virtual-time instants (nanosecond resolution),
//! * [`EventQueue`] — a deterministic discrete-event queue with FIFO
//!   tie-breaking,
//! * [`Topology`] — hop counts for flat, 3D-torus, and dragonfly networks,
//! * [`MachineModel`] — α/β message costing plus the calibrated interpreter
//!   overhead charged by the dynamic (CharmPy-like) dispatch mode.
//!
//! The event loop that drives PE scheduling lives in `charm-core`; it is a
//! consumer of these types.

#![forbid(unsafe_code)]

pub mod model;
pub mod permute;
pub mod queue;
pub mod time;
pub mod topology;

pub use model::MachineModel;
pub use permute::PermuteSchedule;
pub use queue::EventQueue;
pub use time::VTime;
pub use topology::Topology;
