//! Machine model: turns (src, dst, size) into message delays and prices the
//! interpreter overhead of the dynamic (CharmPy-like) dispatch mode.
//!
//! This is the substitution for the paper's physical testbeds (Blue Waters
//! and Cori): the simulated backend charges virtual time from this model
//! instead of running on Cray hardware. Parameters are rough public numbers
//! for the two machines; the figures reproduced from them depend on the
//! *relationships* (latency vs bandwidth vs compute), not the absolute
//! values.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::topology::Topology;

/// Cost parameters of the simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// PEs per node; PEs `[k*cpn, (k+1)*cpn)` share node `k`.
    pub cores_per_node: usize,
    /// Interconnect topology over nodes.
    pub topology: Topology,
    /// Fixed software+NIC cost per off-node message (the α term), ns.
    pub base_latency_ns: u64,
    /// Extra latency per network hop beyond the first, ns.
    pub per_hop_ns: u64,
    /// Latency of an intra-node (shared-memory) message, ns.
    pub same_node_latency_ns: u64,
    /// Link bandwidth in bytes per nanosecond (1.0 = 1 GB/s).
    pub bytes_per_ns: f64,
    /// Dynamic-dispatch mode: fixed interpreter cost charged per entry
    /// method invocation (attribute lookup, frame setup — the cost CharmPy
    /// pays to run each entry method in Python), ns.
    pub py_entry_overhead_ns: u64,
    /// Dynamic-dispatch mode: per-payload-byte interpreter cost in
    /// picoseconds (header parsing, argument unpacking in Python).
    pub py_byte_overhead_ps: u64,
}

impl MachineModel {
    /// Node index hosting `pe`.
    #[inline]
    pub fn node_of(&self, pe: usize) -> usize {
        pe / self.cores_per_node.max(1)
    }

    /// Network delay for a `bytes`-byte message from `src` PE to `dst` PE.
    ///
    /// Same-PE messages are free here (the runtime bypasses the network for
    /// them entirely — the paper's §II-D optimization).
    ///
    /// This prices one *envelope*, whatever it carries: a TRAM aggregation
    /// batch (`Runtime::aggregation`) therefore pays the fixed per-message
    /// latency once for the whole frame plus bandwidth on the total frame
    /// bytes — which is exactly the modeled benefit of coalescing; the
    /// receiver then pays per-constituent unpack cost when it splits the
    /// frame.
    pub fn msg_delay(&self, src: usize, dst: usize, bytes: usize) -> Duration {
        if src == dst {
            return Duration::ZERO;
        }
        let (na, nb) = (self.node_of(src), self.node_of(dst));
        let fixed_ns = if na == nb {
            self.same_node_latency_ns
        } else {
            let hops = self.topology.hops(na, nb) as u64;
            self.base_latency_ns + self.per_hop_ns * hops.saturating_sub(1)
        };
        let transfer_ns = if self.bytes_per_ns > 0.0 {
            (bytes as f64 / self.bytes_per_ns) as u64
        } else {
            0
        };
        Duration::from_nanos(fixed_ns + transfer_ns)
    }

    /// Interpreter overhead charged per entry-method delivery in dynamic
    /// dispatch mode for a `bytes`-byte payload. Zero-sized in native mode
    /// (the runtime simply does not call this).
    pub fn dynamic_overhead(&self, bytes: usize) -> Duration {
        let ps = (bytes as u64).saturating_mul(self.py_byte_overhead_ps);
        Duration::from_nanos(self.py_entry_overhead_ns + ps / 1000)
    }

    /// Blue Waters-like: Cray XE6, 3D torus (Gemini), 32 cores/node.
    pub fn bluewaters(nodes_hint: usize) -> Self {
        // Pick torus dimensions that cover at least `nodes_hint` nodes.
        let d = (nodes_hint.max(1) as f64).cbrt().ceil() as usize;
        MachineModel {
            cores_per_node: 32,
            topology: Topology::Torus3D {
                dims: [d.max(1), d.max(1), d.max(1)],
            },
            base_latency_ns: 1_500,
            per_hop_ns: 100,
            same_node_latency_ns: 400,
            bytes_per_ns: 6.0, // ~6 GB/s per direction on Gemini
            py_entry_overhead_ns: 4_000,
            py_byte_overhead_ps: 40,
        }
    }

    /// Cori-like: Cray XC40, dragonfly (Aries), KNL nodes (64 usable cores).
    pub fn cori_knl() -> Self {
        MachineModel {
            cores_per_node: 64,
            topology: Topology::Dragonfly { group_size: 384 },
            base_latency_ns: 1_200,
            per_hop_ns: 150,
            same_node_latency_ns: 600, // KNL cores are slow; on-node msgs too
            bytes_per_ns: 8.0,
            py_entry_overhead_ns: 12_000, // KNL single-thread Python is slower
            py_byte_overhead_ps: 100,
        }
    }

    /// Single shared-memory node (laptop-scale), flat topology.
    pub fn local(cores: usize) -> Self {
        MachineModel {
            cores_per_node: cores.max(1),
            topology: Topology::Flat,
            base_latency_ns: 500,
            per_hop_ns: 0,
            same_node_latency_ns: 300,
            bytes_per_ns: 12.0,
            py_entry_overhead_ns: 8_000,
            py_byte_overhead_ps: 40,
        }
    }

    /// An idealized zero-latency machine, useful in unit tests where only
    /// event ordering matters.
    pub fn instant() -> Self {
        MachineModel {
            cores_per_node: 1,
            topology: Topology::Flat,
            base_latency_ns: 0,
            per_hop_ns: 0,
            same_node_latency_ns: 0,
            bytes_per_ns: 0.0,
            py_entry_overhead_ns: 0,
            py_byte_overhead_ps: 0,
        }
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel::local(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_pe_is_free() {
        let m = MachineModel::bluewaters(64);
        assert_eq!(m.msg_delay(5, 5, 1 << 20), Duration::ZERO);
    }

    #[test]
    fn same_node_cheaper_than_cross_node() {
        let m = MachineModel::bluewaters(64);
        // PEs 0 and 1 share node 0; PE 32 is on node 1.
        let near = m.msg_delay(0, 1, 1024);
        let far = m.msg_delay(0, 32, 1024);
        assert!(near < far, "near={near:?} far={far:?}");
    }

    #[test]
    fn delay_monotone_in_size() {
        let m = MachineModel::cori_knl();
        let small = m.msg_delay(0, 200, 64);
        let large = m.msg_delay(0, 200, 1 << 20);
        assert!(small < large);
    }

    #[test]
    fn delay_monotone_in_hops_on_torus() {
        let m = MachineModel::bluewaters(512); // 8x8x8 torus
        let cpn = m.cores_per_node;
        let one_hop = m.msg_delay(0, cpn, 0); // node 0 -> node 1
        let many_hops = m.msg_delay(0, cpn * (4 + 4 * 8 + 4 * 64), 0); // opposite corner
        assert!(one_hop < many_hops, "{one_hop:?} vs {many_hops:?}");
    }

    #[test]
    fn dynamic_overhead_grows_with_payload() {
        let m = MachineModel::local(4);
        let d0 = m.dynamic_overhead(0);
        let d1 = m.dynamic_overhead(1 << 20);
        assert_eq!(d0, Duration::from_nanos(m.py_entry_overhead_ns));
        assert!(d1 > d0);
    }

    #[test]
    fn instant_model_is_all_zero() {
        let m = MachineModel::instant();
        assert_eq!(m.msg_delay(0, 1, 12345), Duration::ZERO);
        assert_eq!(m.dynamic_overhead(12345), Duration::ZERO);
    }

    #[test]
    fn node_mapping() {
        let m = MachineModel::bluewaters(8);
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(31), 0);
        assert_eq!(m.node_of(32), 1);
        assert_eq!(m.node_of(95), 2);
    }
}
