//! Property tests of the simulation substrate: event-queue ordering and
//! topology metric laws.

use charm_sim::{EventQueue, MachineModel, Topology, VTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn queue_pops_sorted_stable(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(VTime(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Sorted by time, FIFO within equal times.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "ties must pop in insertion order");
            }
        }
    }

    #[test]
    fn torus_hops_is_a_metric(
        dims in (1usize..6, 1usize..6, 1usize..6),
        a in 0usize..200,
        b in 0usize..200,
        c in 0usize..200,
    ) {
        let t = Topology::Torus3D { dims: [dims.0, dims.1, dims.2] };
        let n = dims.0 * dims.1 * dims.2;
        let (a, b, c) = (a % n, b % n, c % n);
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(t.hops(a, a), 0);
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
        if a != b {
            prop_assert!(t.hops(a, b) >= 1);
        }
    }

    #[test]
    fn dragonfly_hops_is_a_metric(
        group in 1usize..12,
        a in 0usize..500,
        b in 0usize..500,
        c in 0usize..500,
    ) {
        let t = Topology::Dragonfly { group_size: group };
        prop_assert_eq!(t.hops(a, a), 0);
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
    }

    #[test]
    fn msg_delay_monotone_in_size(
        src in 0usize..64,
        dst in 0usize..64,
        s1 in 0usize..100_000,
        s2 in 0usize..100_000,
    ) {
        let m = MachineModel::bluewaters(8);
        let (lo, hi) = (s1.min(s2), s1.max(s2));
        prop_assert!(m.msg_delay(src, dst, lo) <= m.msg_delay(src, dst, hi));
    }

    #[test]
    fn dynamic_overhead_monotone(bytes1 in 0usize..1_000_000, bytes2 in 0usize..1_000_000) {
        let m = MachineModel::cori_knl();
        let (lo, hi) = (bytes1.min(bytes2), bytes1.max(bytes2));
        prop_assert!(m.dynamic_overhead(lo) <= m.dynamic_overhead(hi));
    }
}
