//! Property tests of the LB strategies: validity invariants and
//! improvement guarantees over arbitrary load distributions.

use charm_core::{ChareId, CollectionId, Index, LbChareStat, LbStats, LbStrategy, Pe};
use charm_lb::{loads_after, GreedyLb, RandLb, RefineLb, RotateLb};
use proptest::prelude::*;

fn stats_from(npes: usize, chares: Vec<(Pe, u64, bool)>) -> LbStats {
    LbStats {
        npes,
        chares: chares
            .into_iter()
            .enumerate()
            .map(|(i, (pe, load_us, migratable))| LbChareStat {
                id: ChareId {
                    coll: CollectionId { creator: 0, seq: 0 },
                    index: Index::from(i as i32),
                },
                pe: pe % npes,
                load_ns: load_us * 1_000,
                migratable,
            })
            .collect(),
    }
}

fn check_valid(stats: &LbStats, moves: &[(ChareId, Pe)]) -> Result<(), TestCaseError> {
    let mut seen = std::collections::HashSet::new();
    for (id, pe) in moves {
        prop_assert!(*pe < stats.npes, "destination out of range");
        let c = stats.chares.iter().find(|c| c.id == *id);
        prop_assert!(c.is_some(), "moved unknown chare");
        prop_assert!(c.unwrap().migratable, "moved pinned chare");
        prop_assert!(seen.insert(*id), "chare moved twice");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_strategies_produce_valid_moves(
        npes in 1usize..9,
        chares in prop::collection::vec((0usize..8, 0u64..10_000, any::<bool>()), 0..40),
    ) {
        let stats = stats_from(npes, chares);
        for strategy in [
            &GreedyLb as &dyn LbStrategy,
            &RefineLb::default(),
            &RotateLb,
            &RandLb::default(),
        ] {
            let moves = strategy.assign(&stats);
            check_valid(&stats, &moves)?;
        }
    }

    #[test]
    fn greedy_meets_the_lpt_guarantee_with_pinned_loads(
        npes in 2usize..9,
        chares in prop::collection::vec((0usize..8, 1u64..10_000, any::<bool>()), 1..40),
    ) {
        // LPT (greedy) is a 4/3-approximation, so it may be *slightly*
        // worse than a lucky status quo; its true guarantee is
        //   max_after <= max(pinned_max, avg + biggest_movable).
        let stats = stats_from(npes, chares);
        let moves = GreedyLb.assign(&stats);
        check_valid(&stats, &moves)?;
        let after = loads_after(&stats, &moves);
        let max_after = after.iter().cloned().fold(0.0f64, f64::max);
        let total: f64 = after.iter().sum();
        let avg = total / npes as f64;
        let mut pinned = vec![0.0f64; npes];
        let mut biggest_movable = 0.0f64;
        for c in &stats.chares {
            let l = c.load_ns as f64 / 1e9;
            if c.migratable {
                biggest_movable = biggest_movable.max(l);
            } else {
                pinned[c.pe] += l;
            }
        }
        let pinned_max = pinned.iter().cloned().fold(0.0f64, f64::max);
        let bound = (avg + biggest_movable).max(pinned_max + biggest_movable);
        prop_assert!(max_after <= bound + 1e-9, "max {max_after} > bound {bound}");
    }

    #[test]
    fn refine_reduces_or_keeps_max_load(
        npes in 2usize..9,
        chares in prop::collection::vec((0usize..8, 1u64..10_000, prop::bool::weighted(0.8)), 1..40),
    ) {
        let stats = stats_from(npes, chares);
        let moves = RefineLb::default().assign(&stats);
        check_valid(&stats, &moves)?;
        let max_before = stats.pe_loads().iter().cloned().fold(0.0f64, f64::max);
        let max_after = loads_after(&stats, &moves)
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        prop_assert!(max_after <= max_before + 1e-9, "{max_before} -> {max_after}");
    }

    #[test]
    fn greedy_with_all_migratable_achieves_lpt_bound(
        npes in 2usize..7,
        loads in prop::collection::vec(1u64..10_000, 2..30),
    ) {
        // Classic LPT guarantee: max <= avg * (4/3 - 1/(3m)) ... we assert
        // the weaker, always-true bound max <= avg + largest_job.
        let stats = stats_from(npes, loads.iter().map(|&l| (0, l, true)).collect());
        let moves = GreedyLb.assign(&stats);
        let after = loads_after(&stats, &moves);
        let total: f64 = after.iter().sum();
        let avg = total / npes as f64;
        let biggest = *loads.iter().max().unwrap() as f64 * 1e-6;
        let max = after.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(max <= avg + biggest + 1e-9, "max {max}, avg {avg}, big {biggest}");
    }
}
