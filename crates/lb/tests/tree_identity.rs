//! Hierarchical-LB equivalence and scale-structure bounds.
//!
//! `LbMode::Tree { group_size: npes }` degenerates to a one-level tree:
//! every non-root PE is a leaf that ships its full candidate set to the
//! root, whose refine input is then exactly what central
//! [`GreedyRefineLb`] sees. The identity test pins that equivalence
//! migration-for-migration; the peak test pins the point of the
//! hierarchy — no PE materializes O(nchares) stat records.

use std::sync::Arc;
use std::time::Duration;

use charm_core::prelude::*;
use charm_core::{LbMode, RunReport, Runtime};
use charm_lb::GreedyRefineLb;
use charm_sim::MachineModel;
use serde::{Deserialize, Serialize};

/// AtSync worker with a deterministic, skewed, placement-independent load:
/// `load(index, round)` depends only on the chare and the round, so both
/// LB modes see identical stats every epoch regardless of where the
/// balancer put the chare in earlier rounds.
#[derive(Serialize, Deserialize)]
struct Skew {
    round: u32,
    init: SkewInit,
}

#[derive(Clone, Serialize, Deserialize)]
struct SkewInit {
    rounds: u32,
    nchares: u32,
    done: Future<RedData>,
}

#[derive(Serialize, Deserialize)]
enum SkewMsg {
    Go,
}

impl Skew {
    fn work(&mut self, ctx: &mut Ctx) {
        let i = ctx.my_index().first() as u64;
        let r = self.round as u64;
        // Front-loaded skew: the first sixteenth of the index space is
        // heavy, and Block placement stacks it on the first PEs, so
        // refinement must move work off them.
        let heavy = i * 16 < self.init.nchares as u64;
        let ms = (i * 31 + r * 17) % 11 + 1 + if heavy { 40 } else { 0 };
        ctx.charge(Duration::from_millis(ms));
        self.round += 1;
        ctx.at_sync();
    }

    fn report(&self, ctx: &mut Ctx) {
        // One slot per chare; Sum-reducing the one-hot rows yields the
        // final index→PE placement map.
        let mut v = vec![0i64; self.init.nchares as usize];
        v[ctx.my_index().first() as usize] = ctx.my_pe() as i64;
        ctx.contribute(
            RedData::VecI64(v),
            Reducer::Sum,
            RedTarget::Future(self.init.done.id()),
        );
    }
}

impl Chare for Skew {
    type Msg = SkewMsg;
    type Init = SkewInit;

    fn create(init: SkewInit, _ctx: &mut Ctx) -> Self {
        Skew { round: 0, init }
    }

    fn receive(&mut self, _msg: SkewMsg, ctx: &mut Ctx) {
        self.work(ctx);
    }

    fn resume_from_sync(&mut self, ctx: &mut Ctx) {
        if self.round < self.init.rounds {
            self.work(ctx);
        } else {
            self.report(ctx);
        }
    }
}

/// Run `nchares` skewed workers over `npes` simulated PEs for `rounds` LB
/// epochs; return the final placement map and the run report.
fn run_skew(npes: usize, nchares: u32, rounds: u32, mode: Option<LbMode>) -> (Vec<i64>, RunReport) {
    let out: Arc<std::sync::Mutex<Option<RedData>>> = Arc::new(std::sync::Mutex::new(None));
    let out2 = Arc::clone(&out);
    let mut rt = Runtime::new(npes)
        .backend(Backend::Sim(MachineModel::bluewaters(
            npes.div_ceil(32).max(8),
        )))
        .meter_compute(false)
        .register_migratable::<Skew>()
        .lb_strategy(Arc::new(GreedyRefineLb));
    if let Some(mode) = mode {
        rt = rt.lb_mode(mode);
    }
    let report = rt.run(move |co| {
        let done = co.ctx().create_future::<RedData>();
        let arr = co.ctx().create_array_with::<Skew>(
            &[nchares as i32],
            SkewInit {
                rounds,
                nchares,
                done,
            },
            ArrayOpts {
                placement: Placement::Block,
                use_lb: true,
            },
        );
        arr.send(co.ctx(), SkewMsg::Go);
        let RedData::VecI64(placements) = co.get(&done) else {
            panic!("skew workers produced no placement map");
        };
        *out2.lock().unwrap() = Some(RedData::VecI64(placements));
        co.ctx().exit();
    });
    let Some(RedData::VecI64(placements)) = out.lock().unwrap().take() else {
        panic!("placement map did not surface");
    };
    (placements, report)
}

/// A one-level tree is the central balancer: same migrations, same final
/// placements, same epoch count.
#[test]
fn tree_spanning_all_pes_matches_central() {
    let (npes, nchares, rounds) = (8, 32, 2);
    let (central, central_report) = run_skew(npes, nchares, rounds, None);
    let (tree, tree_report) = run_skew(
        npes,
        nchares,
        rounds,
        Some(LbMode::Tree { group_size: npes }),
    );
    assert_eq!(central, tree, "final placements diverged");
    assert_eq!(
        central_report.migrations, tree_report.migrations,
        "migration counts diverged"
    );
    assert_eq!(central_report.lb_epochs, rounds as u64);
    assert_eq!(tree_report.lb_epochs, rounds as u64);
    assert!(
        central_report.migrations > 0,
        "workload too balanced to exercise the strategies"
    );
}

/// The hierarchy bounds what any PE holds: central PE 0 materializes every
/// stat record, the tree root only its group's truncated residuals.
#[test]
fn tree_mode_bounds_peak_stats_per_pe() {
    let (npes, nchares) = (64, 1024u32);
    let (_, central_report) = run_skew(npes, nchares, 1, None);
    let central_peak = central_report.pe_stats[0].lb_peak_stats;
    assert_eq!(
        central_peak, nchares as u64,
        "central PE 0 should see every stat record"
    );

    let (_, tree_report) = run_skew(npes, nchares, 1, Some(LbMode::Tree { group_size: 4 }));
    let tree_peak = tree_report
        .pe_stats
        .iter()
        .map(|p| p.lb_peak_stats)
        .max()
        .unwrap_or(0);
    assert!(
        tree_peak > 0,
        "tree mode balanced without holding any stats"
    );
    assert!(
        tree_peak <= nchares as u64 / 4,
        "tree peak {tree_peak} is not o(nchares={nchares})"
    );
    assert!(tree_report.migrations > 0);
    assert_eq!(tree_report.lb_epochs, 1);
}

/// Multiple Tree-mode epochs back to back: the epoch/pending-poll
/// machinery must not wedge, and every epoch must improve or hold the
/// placement (the workers complete all rounds).
#[test]
fn tree_mode_survives_repeated_epochs() {
    let (placements, report) = run_skew(16, 128, 3, Some(LbMode::Tree { group_size: 4 }));
    assert_eq!(report.lb_epochs, 3);
    assert_eq!(placements.len(), 128);
    for (i, &pe) in placements.iter().enumerate() {
        assert!((pe as usize) < 16, "chare {i} reported bad PE {pe}");
    }
    assert!(report.clean_exit);
}
