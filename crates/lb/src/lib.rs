//! # charm-lb — load balancing strategies for charm-rs
//!
//! Centralized strategies in the spirit of Charm++'s LB suite (paper
//! §II-J): the runtime measures per-chare loads, ships them to PE 0 at an
//! AtSync point, and the configured strategy computes a new assignment.
//!
//! * [`GreedyLb`] — classic `GreedyLB`: heaviest chare onto the currently
//!   least-loaded PE. Strong balance, unbounded migration count.
//! * [`RefineLb`] — `RefineLB`: migrate only enough chares away from
//!   overloaded PEs to bring them under a threshold; minimizes migrations.
//! * [`GreedyRefineLb`] — the integer-exact greedy-refine core shared with
//!   the runtime's hierarchical balancer (`LbMode::Tree`), run centrally
//!   over the full stats; prefers keeping chares where they are.
//! * [`RotateLb`] — moves every chare to the next PE; a correctness-testing
//!   strategy, like Charm++'s rotate balancer.
//! * [`RandLb`] — seeded random placement, a baseline for benchmarks.

#![forbid(unsafe_code)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use charm_core::{
    greedy_refine_place, refine_limit, ChareId, LbStats, LbStrategy, Pe, REFINE_THRESHOLD_PERMILLE,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Order floats for heaps without NaN concerns (loads are finite, ≥ 0).
fn total(f: f64) -> u64 {
    debug_assert!(f.is_finite() && f >= 0.0);
    (f * 1e9) as u64
}

/// GreedyLB: longest-processing-time-first onto least-loaded PEs.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyLb;

impl LbStrategy for GreedyLb {
    fn assign(&self, stats: &LbStats) -> Vec<(ChareId, Pe)> {
        let npes = stats.npes;
        // Fixed (non-migratable) load stays where it is.
        let mut pe_load = vec![0.0f64; npes];
        for c in stats.chares.iter().filter(|c| !c.migratable) {
            pe_load[c.pe] += c.load_ns as f64 / 1e9;
        }
        // Min-heap of (load, pe).
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..npes)
            .map(|pe| Reverse((total(pe_load[pe]), pe)))
            .collect();
        let mut movable: Vec<_> = stats.chares.iter().filter(|c| c.migratable).collect();
        movable.sort_by(|a, b| b.load_ns.cmp(&a.load_ns).then(a.id.cmp(&b.id)));
        let mut moves = Vec::new();
        for c in movable {
            let Reverse((load, pe)) = heap.pop().expect("npes >= 1");
            if pe != c.pe {
                moves.push((c.id, pe));
            }
            heap.push(Reverse((load + c.load_ns, pe)));
        }
        moves
    }
    fn name(&self) -> &'static str {
        "GreedyLB"
    }
}

/// RefineLB: keep most chares in place; move the smallest adequate chares
/// off overloaded PEs until every PE is below `threshold × average`.
#[derive(Debug, Clone, Copy)]
pub struct RefineLb {
    /// Overload tolerance: a PE is overloaded above `threshold * avg`.
    pub threshold: f64,
}

impl Default for RefineLb {
    fn default() -> Self {
        RefineLb { threshold: 1.05 }
    }
}

impl LbStrategy for RefineLb {
    fn assign(&self, stats: &LbStats) -> Vec<(ChareId, Pe)> {
        let npes = stats.npes;
        let mut pe_load = stats.pe_loads();
        let avg = pe_load.iter().sum::<f64>() / npes as f64;
        if avg == 0.0 {
            return Vec::new();
        }
        let limit = self.threshold * avg;
        // Chares currently on each PE, lightest last (so `pop` takes the
        // heaviest candidate first, which converges faster).
        let mut on_pe: Vec<Vec<(u64, ChareId)>> = vec![Vec::new(); npes];
        for c in stats.chares.iter().filter(|c| c.migratable) {
            on_pe[c.pe].push((c.load_ns, c.id));
        }
        for v in &mut on_pe {
            v.sort();
        }
        let mut moves = Vec::new();
        // Process overloaded PEs, heaviest first, deterministically.
        let mut order: Vec<Pe> = (0..npes).collect();
        order.sort_by(|&a, &b| pe_load[b].partial_cmp(&pe_load[a]).unwrap().then(a.cmp(&b)));
        for donor in order {
            while pe_load[donor] > limit {
                // Heaviest remaining chare on the donor.
                let Some((load_ns, id)) = on_pe[donor].pop() else {
                    break;
                };
                // Receiver: least-loaded PE.
                let recv = (0..npes)
                    .min_by(|&a, &b| pe_load[a].partial_cmp(&pe_load[b]).unwrap().then(a.cmp(&b)))
                    .unwrap();
                let load = load_ns as f64 / 1e9;
                if recv == donor || pe_load[recv] + load >= pe_load[donor] {
                    // Moving would not improve things; put it back and stop.
                    on_pe[donor].push((load_ns, id));
                    break;
                }
                pe_load[donor] -= load;
                pe_load[recv] += load;
                on_pe[recv].push((load_ns, id));
                moves.push((id, recv));
            }
        }
        moves
    }
    fn name(&self) -> &'static str {
        "RefineLB"
    }
}

/// GreedyRefineLB: overloaded PEs shed their heaviest chares onto the
/// least-loaded PEs until everyone fits under `avg · 1.05`, preferring to
/// keep each chare where it already runs (Charm++'s `GreedyRefineLB`).
///
/// This is the same integer-exact core the hierarchical balancer runs at
/// every interior tree node; `Runtime::lb_mode(LbMode::Tree { group_size:
/// npes })` reproduces this strategy's central decisions
/// migration-for-migration.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyRefineLb;

impl LbStrategy for GreedyRefineLb {
    fn assign(&self, stats: &LbStats) -> Vec<(ChareId, Pe)> {
        // Every PE is an acceptor carrying its pinned (non-migratable)
        // load; every migratable chare is a placement candidate.
        let mut acceptors: Vec<(Pe, u64)> = (0..stats.npes).map(|pe| (pe, 0u64)).collect();
        let mut total = 0u64;
        let mut candidates = Vec::new();
        for c in &stats.chares {
            total += c.load_ns;
            if c.migratable {
                candidates.push(c.clone());
            } else if let Some(a) = acceptors.get_mut(c.pe) {
                a.1 += c.load_ns;
            }
        }
        let limit = refine_limit(total, stats.npes as u64, REFINE_THRESHOLD_PERMILLE);
        greedy_refine_place(&mut acceptors, candidates, limit)
            .moves
            .into_iter()
            .map(|(id, _, to)| (id, to))
            .collect()
    }
    fn name(&self) -> &'static str {
        "GreedyRefineLB"
    }
}

/// RotateLB: every migratable chare moves to `(pe + 1) % npes`. Exists to
/// stress the migration machinery, exactly like Charm++'s RotateLB.
#[derive(Debug, Default, Clone, Copy)]
pub struct RotateLb;

impl LbStrategy for RotateLb {
    fn assign(&self, stats: &LbStats) -> Vec<(ChareId, Pe)> {
        stats
            .chares
            .iter()
            .filter(|c| c.migratable)
            .map(|c| (c.id, (c.pe + 1) % stats.npes))
            .collect()
    }
    fn name(&self) -> &'static str {
        "RotateLB"
    }
}

/// RandLB: uniformly random placement from a fixed seed (deterministic per
/// epoch), as a do-something baseline.
#[derive(Debug, Clone, Copy)]
pub struct RandLb {
    /// RNG seed; combined with the stats to stay deterministic.
    pub seed: u64,
}

impl Default for RandLb {
    fn default() -> Self {
        RandLb { seed: 0x5eed }
    }
}

impl LbStrategy for RandLb {
    fn assign(&self, stats: &LbStats) -> Vec<(ChareId, Pe)> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ stats.chares.len() as u64);
        stats
            .chares
            .iter()
            .filter(|c| c.migratable)
            .map(|c| (c.id, rng.gen_range(0..stats.npes)))
            .collect()
    }
    fn name(&self) -> &'static str {
        "RandLB"
    }
}

/// Apply `moves` to `stats`, returning the resulting per-PE loads in
/// seconds — shared by tests and the ablation benches.
pub fn loads_after(stats: &LbStats, moves: &[(ChareId, Pe)]) -> Vec<f64> {
    let mut loads = vec![0.0; stats.npes];
    for c in &stats.chares {
        let dest = moves
            .iter()
            .find(|(id, _)| *id == c.id)
            .map(|(_, pe)| *pe)
            .unwrap_or(c.pe);
        loads[dest] += c.load_ns as f64 / 1e9;
    }
    loads
}

/// Max/avg ratio of a load vector (1.0 = perfectly balanced).
pub fn imbalance_of(loads: &[f64]) -> f64 {
    let max = loads.iter().cloned().fold(0.0, f64::max);
    let avg = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
    if avg > 0.0 {
        max / avg
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charm_core::{CollectionId, Index, LbChareStat};

    fn mk_stats(npes: usize, loads_ms: &[(Pe, u64, bool)]) -> LbStats {
        LbStats {
            npes,
            chares: loads_ms
                .iter()
                .enumerate()
                .map(|(i, &(pe, ms, migratable))| LbChareStat {
                    id: ChareId {
                        coll: CollectionId { creator: 0, seq: 0 },
                        index: Index::from(i as i32),
                    },
                    pe,
                    load_ns: ms * 1_000_000,
                    migratable,
                })
                .collect(),
        }
    }

    fn check_valid(stats: &LbStats, moves: &[(ChareId, Pe)]) {
        for (id, pe) in moves {
            assert!(*pe < stats.npes, "destination out of range");
            let c = stats
                .chares
                .iter()
                .find(|c| c.id == *id)
                .expect("unknown chare moved");
            assert!(c.migratable, "non-migratable chare moved");
        }
        // No chare moved twice.
        let mut ids: Vec<_> = moves.iter().map(|(id, _)| id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), moves.len());
    }

    #[test]
    fn greedy_balances_skewed_load() {
        // All load initially on PE 0.
        let stats = mk_stats(
            4,
            &[
                (0, 100, true),
                (0, 90, true),
                (0, 80, true),
                (0, 70, true),
                (0, 10, true),
                (0, 10, true),
                (0, 10, true),
                (0, 10, true),
            ],
        );
        let moves = GreedyLb.assign(&stats);
        check_valid(&stats, &moves);
        let after = loads_after(&stats, &moves);
        let before = imbalance_of(&stats.pe_loads());
        let post = imbalance_of(&after);
        assert!(
            post < before,
            "greedy must improve imbalance: {before} -> {post}"
        );
        assert!(post < 1.3, "greedy should get close to balanced: {post}");
    }

    #[test]
    fn greedy_respects_non_migratable() {
        let stats = mk_stats(2, &[(0, 100, false), (0, 100, true), (1, 10, true)]);
        let moves = GreedyLb.assign(&stats);
        check_valid(&stats, &moves);
        assert!(
            !moves.iter().any(|(id, _)| *id == stats.chares[0].id),
            "pinned chare must stay"
        );
    }

    #[test]
    fn greedy_on_balanced_input_stays_balanced() {
        let stats = mk_stats(2, &[(0, 50, true), (1, 50, true)]);
        let moves = GreedyLb.assign(&stats);
        check_valid(&stats, &moves);
        let after = loads_after(&stats, &moves);
        assert!((imbalance_of(&after) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn refine_reduces_max_load_and_moves_few() {
        let stats = mk_stats(
            4,
            &[
                (0, 40, true),
                (0, 40, true),
                (0, 40, true),
                (0, 40, true),
                (1, 40, true),
                (2, 40, true),
                (3, 40, true),
            ],
        );
        let moves = RefineLb::default().assign(&stats);
        check_valid(&stats, &moves);
        let before = stats.pe_loads();
        let after = loads_after(&stats, &moves);
        let max_before = before.iter().cloned().fold(0.0, f64::max);
        let max_after = after.iter().cloned().fold(0.0, f64::max);
        assert!(max_after < max_before, "{max_before} -> {max_after}");
        assert!(
            moves.len() <= 2,
            "refine should move few chares, moved {}",
            moves.len()
        );
    }

    #[test]
    fn refine_never_increases_max_load() {
        let stats = mk_stats(
            3,
            &[
                (0, 90, true),
                (0, 5, true),
                (1, 50, true),
                (2, 10, true),
                (2, 10, true),
            ],
        );
        let moves = RefineLb::default().assign(&stats);
        check_valid(&stats, &moves);
        let max_before = stats.pe_loads().iter().cloned().fold(0.0, f64::max);
        let max_after = loads_after(&stats, &moves)
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        assert!(max_after <= max_before + 1e-9);
    }

    #[test]
    fn refine_no_moves_when_balanced() {
        let stats = mk_stats(3, &[(0, 30, true), (1, 30, true), (2, 30, true)]);
        assert!(RefineLb::default().assign(&stats).is_empty());
    }

    #[test]
    fn refine_handles_zero_load() {
        let stats = mk_stats(3, &[(0, 0, true), (1, 0, true)]);
        assert!(RefineLb::default().assign(&stats).is_empty());
    }

    #[test]
    fn greedy_refine_no_moves_when_balanced() {
        let stats = mk_stats(3, &[(0, 30, true), (1, 30, true), (2, 30, true)]);
        assert!(GreedyRefineLb.assign(&stats).is_empty());
    }

    #[test]
    fn greedy_refine_balances_skewed_load() {
        let stats = mk_stats(
            4,
            &[
                (0, 40, true),
                (0, 40, true),
                (0, 40, true),
                (0, 40, true),
                (1, 40, true),
                (2, 40, true),
                (3, 40, true),
            ],
        );
        let moves = GreedyRefineLb.assign(&stats);
        check_valid(&stats, &moves);
        let before = imbalance_of(&stats.pe_loads());
        let after = imbalance_of(&loads_after(&stats, &moves));
        assert!(after < before, "{before} -> {after}");
        // The 1.05 tolerance admits exactly one extra 40ms chare above the
        // 70ms average nowhere; a balanced outcome needs 3 moves off PE 0.
        assert!(moves.len() <= 3, "refine moves few: {}", moves.len());
    }

    #[test]
    fn greedy_refine_respects_non_migratable_and_is_deterministic() {
        let stats = mk_stats(2, &[(0, 100, false), (0, 100, true), (1, 10, true)]);
        let moves = GreedyRefineLb.assign(&stats);
        check_valid(&stats, &moves);
        assert!(!moves.iter().any(|(id, _)| *id == stats.chares[0].id));
        assert_eq!(moves, GreedyRefineLb.assign(&stats));
    }

    #[test]
    fn rotate_moves_everything_one_step() {
        let stats = mk_stats(3, &[(0, 10, true), (1, 10, true), (2, 10, true)]);
        let moves = RotateLb.assign(&stats);
        check_valid(&stats, &moves);
        assert_eq!(moves.len(), 3);
        for (id, pe) in &moves {
            let c = stats.chares.iter().find(|c| c.id == *id).unwrap();
            assert_eq!(*pe, (c.pe + 1) % 3);
        }
    }

    #[test]
    fn rand_is_deterministic_and_in_range() {
        let stats = mk_stats(5, &[(0, 10, true), (1, 20, true), (2, 30, true)]);
        let a = RandLb::default().assign(&stats);
        let b = RandLb::default().assign(&stats);
        assert_eq!(a, b);
        check_valid(&stats, &a);
    }

    #[test]
    fn strategies_handle_empty_stats() {
        let stats = mk_stats(4, &[]);
        assert!(GreedyLb.assign(&stats).is_empty());
        assert!(GreedyRefineLb.assign(&stats).is_empty());
        assert!(RefineLb::default().assign(&stats).is_empty());
        assert!(RotateLb.assign(&stats).is_empty());
        assert!(RandLb::default().assign(&stats).is_empty());
    }

    #[test]
    fn greedy_is_deterministic() {
        let stats = mk_stats(
            3,
            &[
                (0, 7, true),
                (0, 7, true),
                (1, 7, true),
                (2, 7, true),
                (2, 7, true),
            ],
        );
        assert_eq!(GreedyLb.assign(&stats), GreedyLb.assign(&stats));
    }

    #[test]
    fn greedy_beats_the_paper_imbalance_ratio() {
        // The paper's synthetic imbalance yields max/avg ≈ 2.1; greedy on a
        // 4-chares-per-PE decomposition should bring it near 1.
        let mut spec = Vec::new();
        for pe in 0..8 {
            for k in 0..4 {
                // Alternate heavy and light blocks, skewed per PE.
                let ms = if !(2..=5).contains(&pe) {
                    10
                } else {
                    100 + 5 * k
                };
                spec.push((pe, ms, true));
            }
        }
        let stats = mk_stats(8, &spec);
        let before = imbalance_of(&stats.pe_loads());
        assert!(
            before > 1.5,
            "synthetic input should be imbalanced: {before}"
        );
        let after = imbalance_of(&loads_after(&stats, &GreedyLb.assign(&stats)));
        assert!(after < 1.2, "greedy result {after}");
    }
}
